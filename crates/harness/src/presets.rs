//! Shared experiment setup.
//!
//! Every fig/table/ablation bin used to hand-roll the same blocks: the
//! paper's bandwidth/SLO sweep constants, the "proxy in `--quick`, GMM
//! otherwise" trace construction, the warmed-up extractor rig of the
//! table experiments, and the default engine configuration. They live
//! here once, as constructors with a paper-default and a stress variant.

use crate::grid::{
    AdmissionSpec, ArrivalSpec, FairnessSpec, ScenarioSpec, SweepGrid, TraceKind, WorkloadSpec,
};
use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::{CameraTrace, TraceConfig};
use tangram_sim::rng::DetRng;
use tangram_types::ids::{CameraId, SceneId};
use tangram_types::time::SimDuration;
use tangram_video::generator::{SceneSimulation, VideoConfig};
use tangram_vision::detector::DetectorProxy;
use tangram_vision::extractor::{FlowExtractor, GmmExtractor, ProxyExtractor, RoiExtractor};

/// The paper's uplink sweep (Fig. 12/13/14).
pub const PAPER_BANDWIDTHS_MBPS: [f64; 3] = [20.0, 40.0, 80.0];

/// The four systems of the end-to-end comparison (Fig. 12).
pub const E2E_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Tangram,
    PolicyKind::Clipper,
    PolicyKind::Elf,
    PolicyKind::Mark,
];

/// The SLO axis the paper pairs with each bandwidth (tighter links get
/// looser SLOs).
#[must_use]
pub fn paper_slos_s(bandwidth_mbps: f64) -> [f64; 5] {
    if bandwidth_mbps <= 20.0 {
        [1.0, 1.1, 1.2, 1.3, 1.4]
    } else if bandwidth_mbps <= 40.0 {
        [0.8, 0.9, 1.0, 1.1, 1.2]
    } else {
        [0.6, 0.7, 0.8, 0.9, 1.0]
    }
}

/// MArk's per-bandwidth timeout ("an appropriate timeout for each
/// bandwidth setting", §V-A) — fixed per bandwidth, unaware of the SLO,
/// which is exactly the knob-tuning burden Tangram removes.
#[must_use]
pub fn paper_mark_timeouts_s() -> Vec<(f64, f64)> {
    vec![(20.0, 0.55), (40.0, 0.45), (80.0, 0.35)]
}

/// The motivation-scene subset the end-to-end experiments replay: two
/// scenes in quick mode, the paper's five otherwise.
#[must_use]
pub fn motivation_scenes(quick: bool) -> Vec<SceneId> {
    SceneId::all().take(if quick { 2 } else { 5 }).collect()
}

/// The trace pipeline for a mode: the fast proxy in quick mode, the full
/// GMM pixel pipeline (the paper's prototype) otherwise.
#[must_use]
pub fn trace_kind(quick: bool) -> TraceKind {
    if quick {
        TraceKind::Proxy
    } else {
        TraceKind::Gmm
    }
}

/// Builds one camera trace with the chosen pipeline.
#[must_use]
pub fn build_trace(scene: SceneId, frames: usize, seed: u64, kind: TraceKind) -> CameraTrace {
    match kind {
        TraceKind::Proxy => TraceConfig::proxy_extractor(scene, frames, seed).build(),
        TraceKind::Gmm => TraceConfig::gmm_extractor(scene, frames, seed).build(),
    }
}

/// Builds every camera of a workload (one trace per scene entry).
#[must_use]
pub fn build_workload(spec: &WorkloadSpec, trace_seed: u64) -> Vec<CameraTrace> {
    spec.scene_ids()
        .iter()
        .map(|&scene| build_trace(scene, spec.frames, trace_seed, spec.trace))
        .collect()
}

/// The paper-default engine configuration (Alibaba FC prices, RTX 4090
/// latency profile, 4-instance testbed cap) for one policy.
#[must_use]
pub fn paper_engine(policy: PolicyKind) -> EngineConfig {
    EngineConfig {
        policy,
        ..EngineConfig::default()
    }
}

/// The stress variant: unlimited scale-out and a doubled camera rate —
/// the "how far does it scale" configuration rather than the testbed
/// reproduction.
#[must_use]
pub fn stress_engine(policy: PolicyKind) -> EngineConfig {
    EngineConfig {
        policy,
        max_fps: 20.0,
        max_instances: None,
        ..EngineConfig::default()
    }
}

/// The Fig. 12-shaped grid at one bandwidth: four systems × the paper's
/// five SLOs for that link, one single-camera workload per scene.
#[must_use]
pub fn e2e_grid(
    name: &str,
    bandwidth_mbps: f64,
    scenes: &[SceneId],
    frames: usize,
    kind: TraceKind,
    seed: u64,
) -> SweepGrid {
    let mut grid = SweepGrid::named(name);
    grid.policies = E2E_POLICIES.to_vec();
    grid.seeds = vec![seed];
    grid.slos_s = paper_slos_s(bandwidth_mbps).to_vec();
    grid.bandwidths_mbps = vec![bandwidth_mbps];
    grid.workloads = WorkloadSpec::per_scene(scenes, frames, kind);
    grid.mark_timeouts_s = paper_mark_timeouts_s();
    grid
}

/// The CI smoke grid: a reduced two-axis sweep (four systems × two
/// bandwidths over two proxy scenes) that finishes in seconds yet still
/// exercises batching, stitching, padding and per-patch dispatch.
#[must_use]
pub fn smoke_grid(seed: u64) -> SweepGrid {
    let mut grid = SweepGrid::named("smoke");
    grid.policies = E2E_POLICIES.to_vec();
    grid.seeds = vec![seed];
    grid.slos_s = vec![1.0];
    grid.bandwidths_mbps = vec![20.0, 40.0];
    grid.workloads = WorkloadSpec::per_scene(&motivation_scenes(true), 12, TraceKind::Proxy);
    grid.mark_timeouts_s = paper_mark_timeouts_s();
    grid
}

/// The gold/best-effort tenant SLO mix shared by the streaming presets:
/// a tight 0.8 s class alternating with a lax 1.5 s one.
pub const TENANT_MIX_SLOS_S: [f64; 2] = [0.8, 1.5];

/// A Poisson streaming scenario at `fps` per camera with the standard
/// gold/best-effort tenant mix and simultaneous joins — the building
/// block of the overload sweep's offered-load axis.
#[must_use]
pub fn churn_scenario(fps: f64, frames_per_camera: usize) -> ScenarioSpec {
    ScenarioSpec {
        arrival: ArrivalSpec::Poisson { fps },
        frames_per_camera,
        join_stagger_s: 0.0,
        session_s: None,
        tenant_slos_s: TENANT_MIX_SLOS_S.to_vec(),
        faults: Vec::new(),
    }
}

/// The churny multi-tenant streaming grid (the `bench_churn` bin): four
/// cameras share one uplink, arrive open-loop (Poisson), join staggered
/// and leave before their frame budget runs out, and alternate between a
/// tight "gold" SLO and a lax best-effort one. Swept over the four
/// end-to-end systems at two uplinks.
#[must_use]
pub fn churn_grid(seed: u64, frames_per_camera: usize) -> SweepGrid {
    let mut grid = SweepGrid::named("churn");
    grid.policies = E2E_POLICIES.to_vec();
    grid.seeds = vec![seed];
    grid.slos_s = vec![1.0];
    grid.bandwidths_mbps = vec![40.0, 80.0];
    grid.workloads = vec![WorkloadSpec {
        scenes: vec![1, 2, 3, 4],
        frames: 8, // content pool per camera; the generator cycles it
        trace: TraceKind::Proxy,
    }];
    grid.mark_timeouts_s = paper_mark_timeouts_s();
    grid.scenarios = vec![ScenarioSpec {
        arrival: ArrivalSpec::Poisson { fps: 6.0 },
        frames_per_camera,
        join_stagger_s: 2.0,
        session_s: Some(12.0),
        tenant_slos_s: TENANT_MIX_SLOS_S.to_vec(),
        faults: Vec::new(),
    }];
    grid
}

/// The offered-load ramp of the overload sweep, mean frames per second
/// per camera: from comfortably under capacity to well past it (four
/// cameras share the uplink, so the top rate is a sustained overload).
pub const OVERLOAD_RAMP_FPS: [f64; 4] = [3.0, 6.0, 12.0, 24.0];

/// The admission axis of the overload sweep: the open door (drops
/// nothing, attainment collapses past capacity) against the SLO-aware
/// shedder (sheds best-effort first, keeps gold's attainment).
#[must_use]
pub fn overload_admission_axis() -> Vec<AdmissionSpec> {
    vec![
        AdmissionSpec::Always,
        AdmissionSpec::SloShedder {
            per_item_s: 0.02,
            pressure: 0.5,
        },
    ]
}

/// The overload grid (the `bench_overload` bin): Tangram under a ramp of
/// Poisson rates crossing backend capacity, × the admission axis — the
/// paper-style "attainment vs offered load" experiment. Four cameras
/// with the gold/best-effort tenant mix; `smoke` keeps two ramp points
/// for CI.
#[must_use]
pub fn overload_grid(seed: u64, frames_per_camera: usize, smoke: bool) -> SweepGrid {
    let mut grid = SweepGrid::named(if smoke { "overload" } else { "overload_full" });
    grid.policies = vec![PolicyKind::Tangram];
    grid.seeds = vec![seed];
    grid.slos_s = vec![1.0];
    grid.bandwidths_mbps = vec![80.0];
    grid.workloads = vec![WorkloadSpec {
        scenes: vec![1, 2, 3, 4],
        frames: 8, // content pool per camera; the generator cycles it
        trace: TraceKind::Proxy,
    }];
    grid.mark_timeouts_s = paper_mark_timeouts_s();
    let ramp: &[f64] = if smoke {
        &[OVERLOAD_RAMP_FPS[1], OVERLOAD_RAMP_FPS[3]]
    } else {
        &OVERLOAD_RAMP_FPS
    };
    grid.scenarios = ramp
        .iter()
        .map(|&fps| churn_scenario(fps, frames_per_camera))
        .collect();
    grid.admission = overload_admission_axis();
    grid
}

/// The single-cell golden-trace grids the CI gate replays (the
/// `trace_tool capture` subcommand): one smoke cell (Tangram at
/// 20 Mbps over the first proxy scene — cell 0 of [`smoke_grid`]) and
/// one overload cell (the 24 fps ramp point under the SLO shedder —
/// the admission-heavy cell of [`overload_grid`]). Both restrict an
/// existing preset to one cell, so the golden trace is byte-identical
/// to that cell's trace in the full sweep, and both set
/// [`SweepGrid::capture_traces`].
///
/// `which` is `"smoke"` or `"overload"`; anything else returns `None`.
#[must_use]
pub fn golden_trace_grid(which: &str, seed: u64) -> Option<SweepGrid> {
    let mut grid = match which {
        "smoke" => {
            let mut grid = smoke_grid(seed);
            grid.name = "trace_smoke".to_string();
            grid.policies = vec![PolicyKind::Tangram];
            grid.bandwidths_mbps = vec![20.0];
            grid.workloads.truncate(1);
            grid
        }
        "overload" => {
            let mut grid = overload_grid(seed, 12, true);
            grid.name = "trace_overload".to_string();
            grid.scenarios = vec![churn_scenario(OVERLOAD_RAMP_FPS[3], 12)];
            grid.admission = vec![AdmissionSpec::SloShedder {
                per_item_s: 0.02,
                pressure: 0.5,
            }];
            grid
        }
        _ => return None,
    };
    grid.capture_traces = true;
    Some(grid)
}

/// The gold-over-best-effort DRR weights of the fairness sweep.
pub const FAIRNESS_WEIGHTS: [f64; 2] = [3.0, 1.0];

/// The weighted-DRR fair-ingress spec of the fairness sweep: gold
/// weighted [`FAIRNESS_WEIGHTS`] (3:1) over best-effort, bounded
/// per-class queues, and an ingress service rate of
/// `Σ weights × quantum / tick` = 80 items/s — pinned below what the
/// fairness grid's backend sustains, so admitted work flows through an
/// uncongested scheduler. The Tangram scheduler runs admission-aware
/// (it consults the predicted backend drain before dispatching).
#[must_use]
pub fn fairness_drr_spec() -> FairnessSpec {
    FairnessSpec {
        weights: FAIRNESS_WEIGHTS.to_vec(),
        queue_capacity: 16,
        tick_s: 0.02,
        quantum: 0.4,
        admission_aware: true,
    }
}

/// The offered-load ramp of the fairness sweep, mean frames per second
/// per camera. At ~7.8 patches per frame over four cameras the three
/// points offer ≈ 1×, 2× and 4× the DRR ingress service rate — the
/// middle point is the "2× overload" cell of the weighted-share table.
pub const FAIRNESS_RAMP_FPS: [f64; 3] = [2.5, 5.0, 10.0];

/// The fairness grid (the `bench_fairness` bin): Tangram under a Poisson
/// ramp crossing the DRR ingress capacity, with the gold/best-effort
/// tenant mix and the weighted-DRR fair-ingress axis — the
/// weighted-share-vs-offered-load experiment. The uplink is wide
/// (200 Mbps) and the backend cap raised to 8 instances so the *ingress*
/// is the binding stage: under the 2×-overload cell the admitted
/// per-class mix must track the 3:1 weights instead of collapsing to a
/// single class (the `SloShedder` under the same pressure serves a
/// best-effort-dominant residue — see `baselines/BENCH_overload.json`).
/// `smoke` keeps the 2× and 4× points for CI.
#[must_use]
pub fn fairness_grid(seed: u64, frames_per_camera: usize, smoke: bool) -> SweepGrid {
    let mut grid = SweepGrid::named(if smoke { "fairness" } else { "fairness_full" });
    grid.policies = vec![PolicyKind::Tangram];
    grid.seeds = vec![seed];
    grid.slos_s = vec![1.0];
    grid.bandwidths_mbps = vec![200.0];
    grid.max_instances = Some(Some(8));
    grid.workloads = vec![WorkloadSpec {
        scenes: vec![1, 2, 3, 4],
        frames: 8, // content pool per camera; the generator cycles it
        trace: TraceKind::Proxy,
    }];
    grid.mark_timeouts_s = paper_mark_timeouts_s();
    let ramp: &[f64] = if smoke {
        &[FAIRNESS_RAMP_FPS[1], FAIRNESS_RAMP_FPS[2]]
    } else {
        &FAIRNESS_RAMP_FPS
    };
    grid.scenarios = ramp
        .iter()
        .map(|&fps| churn_scenario(fps, frames_per_camera))
        .collect();
    grid.fairness = vec![fairness_drr_spec()];
    grid
}

/// Camera count of the full city-scale preset (the `bench_throughput`
/// workload); smoke mode runs [`CITY_SCALE_SMOKE_CAMERAS`].
pub const CITY_SCALE_CAMERAS: usize = 32;

/// Camera count of the CI-sized city-scale smoke preset.
pub const CITY_SCALE_SMOKE_CAMERAS: usize = 12;

/// The content pools of the city-scale preset: `cameras` cameras cycling
/// the five synthetic scenes. Each trace's camera id is re-stamped with
/// the camera index — the trace builder derives ids from the *scene*, so
/// without the override two cameras on the same scene would collide (and
/// so would their generated patch ids, which embed the camera id).
#[must_use]
pub fn city_scale_traces(cameras: usize, pool_frames: usize, seed: u64) -> Vec<CameraTrace> {
    let scenes: Vec<SceneId> = SceneId::all().collect();
    (0..cameras)
        .map(|cam| {
            let scene = scenes[cam % scenes.len()];
            let mut trace = build_trace(scene, pool_frames, seed, TraceKind::Proxy);
            trace.camera = CameraId::new(cam as u32);
            trace
        })
        .collect()
}

/// The city-scale streaming scenario: open-loop Poisson cameras with the
/// standard tenant mix, joining in a short stagger. Every camera is
/// link-independent, so the whole fleet is eligible for sharding — the
/// workload `bench_throughput` scales across cores.
#[must_use]
pub fn city_scale_scenario(frames_per_camera: usize) -> ScenarioSpec {
    ScenarioSpec {
        arrival: ArrivalSpec::Poisson { fps: 6.0 },
        frames_per_camera,
        join_stagger_s: 0.25,
        session_s: None,
        tenant_slos_s: TENANT_MIX_SLOS_S.to_vec(),
        faults: Vec::new(),
    }
}

/// The engine configuration of the city-scale preset: Tangram on a wide
/// uplink with unlimited scale-out, so neither the link nor the backend
/// cap serialises the fleet and the measured events/sec reflects the
/// runtime, not a saturated bottleneck.
#[must_use]
pub fn city_scale_engine(seed: u64) -> EngineConfig {
    EngineConfig {
        policy: PolicyKind::Tangram,
        bandwidth_mbps: 200.0,
        max_instances: None,
        seed,
        ..EngineConfig::default()
    }
}

/// Which edge extractor a [`SceneRig`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeExtractor {
    /// Stauffer–Grimson background subtraction (reads rasters).
    Gmm,
    /// Dense optical flow (reads rasters).
    Flow,
    /// SSDLite-MobileNetV2 proxy (ground-truth-driven, no rasters).
    SsdProxy,
    /// Yolov3-MobileNetV2 proxy (ground-truth-driven, no rasters).
    YoloProxy,
}

impl EdgeExtractor {
    /// Whether the extractor consumes rendered rasters (and therefore
    /// needs warm-up frames for its background model).
    #[must_use]
    pub fn needs_raster(self) -> bool {
        matches!(self, EdgeExtractor::Gmm | EdgeExtractor::Flow)
    }

    /// The proxy-or-GMM choice the table experiments make from `--quick`.
    #[must_use]
    pub fn for_mode(quick: bool) -> Self {
        if quick {
            EdgeExtractor::SsdProxy
        } else {
            EdgeExtractor::Gmm
        }
    }

    /// Stable name, used as an rng-fork label so different extractors
    /// never share a random stream.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EdgeExtractor::Gmm => "gmm",
            EdgeExtractor::Flow => "flow",
            EdgeExtractor::SsdProxy => "ssd-proxy",
            EdgeExtractor::YoloProxy => "yolo-proxy",
        }
    }
}

/// A scene simulation paired with a warmed-up RoI extractor — the
/// repeated preamble of the Table II/III/IV experiments.
pub struct SceneRig {
    /// The scene simulation, positioned just past warm-up.
    pub sim: SceneSimulation,
    /// The extractor, background model converged.
    pub extractor: Box<dyn RoiExtractor>,
}

impl SceneRig {
    /// Builds the rig: raster rendering switched by the extractor's
    /// needs, 30 warm-up frames fed through when it reads pixels, and the
    /// proxy's randomness forked from `(label, extractor, scene)` so rigs
    /// are decorrelated across experiments *and* across extractor kinds
    /// within one experiment (Table IV compares proxies side by side).
    #[must_use]
    pub fn new(scene: SceneId, extractor: EdgeExtractor, seed: u64, label: &str) -> Self {
        let video = VideoConfig {
            render: extractor.needs_raster(),
            raster_scale: 0.25,
            ..VideoConfig::default()
        };
        let mut sim = SceneSimulation::new(scene, video, seed);
        let rng = DetRng::new(seed)
            .fork(label)
            .fork(extractor.name())
            .fork_indexed("edge", u64::from(scene.index()));
        let mut boxed: Box<dyn RoiExtractor> = match extractor {
            EdgeExtractor::Gmm => Box::new(GmmExtractor::default()),
            EdgeExtractor::Flow => Box::new(FlowExtractor::default()),
            EdgeExtractor::SsdProxy => Box::new(ProxyExtractor::new(
                DetectorProxy::ssdlite_mobilenet_v2(),
                rng,
            )),
            EdgeExtractor::YoloProxy => Box::new(ProxyExtractor::new(
                DetectorProxy::yolov3_mobilenet_v2(),
                rng,
            )),
        };
        if extractor.needs_raster() {
            for _ in 0..30 {
                let frame = sim.next_frame();
                let _ = boxed.extract(&frame);
            }
        }
        Self {
            sim,
            extractor: boxed,
        }
    }
}

/// The per-scene frame budget the bandwidth/cost tables use: an explicit
/// `--frames` override, a small fixed budget in quick mode, else the
/// scene's evaluation split.
#[must_use]
pub fn scene_eval_frames(
    frames_override: Option<usize>,
    quick: bool,
    quick_default: usize,
    eval_frames: u32,
) -> usize {
    frames_override.unwrap_or(if quick {
        quick_default
    } else {
        eval_frames as usize
    })
}

/// Convenience: `SimDuration` from a float SLO axis value.
#[must_use]
pub fn slo(seconds: f64) -> SimDuration {
    SimDuration::from_secs_f64(seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slo_axes_follow_bandwidth() {
        assert_eq!(paper_slos_s(20.0)[0], 1.0);
        assert_eq!(paper_slos_s(40.0)[0], 0.8);
        assert_eq!(paper_slos_s(80.0)[0], 0.6);
    }

    #[test]
    fn smoke_grid_is_small_and_two_axis() {
        let grid = smoke_grid(42);
        assert_eq!(grid.cell_count(), 4 * 2 * 2);
        assert!(grid.cell_count() <= 16, "smoke must stay CI-sized");
        assert_eq!(grid.bandwidths_mbps.len(), 2);
        assert_eq!(grid.policies.len(), 4);
    }

    #[test]
    fn e2e_grid_matches_paper_shape() {
        let scenes = motivation_scenes(false);
        let grid = e2e_grid("fig12_bw20", 20.0, &scenes, 40, TraceKind::Proxy, 1);
        assert_eq!(grid.cell_count(), 4 * 5 * 5);
        assert_eq!(grid.mark_timeout_for(20.0), Some(0.55));
    }

    #[test]
    fn engine_presets_differ_where_advertised() {
        let paper = paper_engine(PolicyKind::Tangram);
        let stress = stress_engine(PolicyKind::Tangram);
        assert_eq!(paper.max_instances, Some(4));
        assert_eq!(stress.max_instances, None);
        assert!(stress.max_fps > paper.max_fps);
    }

    #[test]
    fn rig_warms_up_raster_extractors() {
        let mut proxy = SceneRig::new(SceneId::new(1), EdgeExtractor::SsdProxy, 7, "t");
        let frame = proxy.sim.next_frame();
        // Frame counter starts at zero for non-raster rigs…
        assert_eq!(frame.frame.raw(), 0);
        let mut gmm = SceneRig::new(SceneId::new(1), EdgeExtractor::Gmm, 7, "t");
        let frame = gmm.sim.next_frame();
        // …and past the 30 warm-up frames for raster ones.
        assert_eq!(frame.frame.raw(), 30);
        let _ = gmm.extractor.extract(&frame);
    }

    #[test]
    fn city_scale_traces_have_unique_camera_ids() {
        let traces = city_scale_traces(12, 4, 7);
        assert_eq!(traces.len(), 12);
        let ids: std::collections::HashSet<u32> = traces.iter().map(|t| t.camera.raw()).collect();
        assert_eq!(ids.len(), 12, "camera ids must not collide across scenes");
        // Scenes cycle: cameras 0 and 5 observe the same scene but keep
        // distinct identities.
        assert_eq!(traces[0].frames.len(), traces[5].frames.len());
        assert_ne!(traces[0].camera, traces[5].camera);
    }

    #[test]
    fn workload_builder_builds_one_trace_per_scene() {
        let spec = WorkloadSpec {
            scenes: vec![1, 2],
            frames: 5,
            trace: TraceKind::Proxy,
        };
        let traces = build_workload(&spec, 9);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].frames.len(), 5);
        assert_ne!(traces[0].camera, traces[1].camera);
    }
}
