//! The parallel experiment harness.
//!
//! Every figure, table and ablation of the paper — and every perf
//! experiment CI gates on — is a sweep: a cartesian product of policy ×
//! seed × workload × bandwidth × SLO cells, each cell one deterministic
//! engine run. This crate turns that shape into infrastructure:
//!
//! * [`grid`] — declarative [`grid::SweepGrid`]s; cells carry seeds
//!   forked per cell via `DetRng::derive_seed`, so results never depend
//!   on which thread ran them. A grid may also sweep
//!   [`grid::ScenarioSpec`]s — running its cells on the event-driven
//!   streaming engine (open-loop arrivals, camera churn, tenant SLO
//!   mixes) instead of trace replay, one cell per scenario — and an
//!   [`grid::AdmissionSpec`] axis crossing every cell with ingress
//!   admission-control policies (always-admit, queue bounds, the
//!   SLO-aware shedder);
//! * [`pool`] — a crossbeam-channel worker pool
//!   ([`pool::parallel_map`]) that preserves input order;
//! * [`runner`] — [`runner::run_grid`]: traces built once per workload,
//!   cells fanned out, results reassembled; parallel output is
//!   bit-for-bit identical to `--workers 1`;
//! * [`report`] — the versioned [`report::BenchReport`] written as
//!   `BENCH_<name>.json`, plus the [`report::gate`] CI comparison
//!   against a checked-in baseline;
//! * [`presets`] — the shared experiment setup (paper sweep constants,
//!   trace and engine constructors, warmed extractor rigs) the bins used
//!   to copy-paste;
//! * [`json`] — the deterministic JSON document model backing it all
//!   (the vendored `serde` is a compile-only stub);
//! * [`toml`] / [`scenario_file`] — the line-tracking TOML reader and
//!   the declarative scenario library it loads
//!   ([`scenario_file::ScenarioFile`]): `config/scenarios/*.toml` files
//!   describing hard streaming runs — fleet, arrivals, tenants, ingress
//!   stages and first-class fault windows — validated at load time with
//!   errors naming the offending line;
//! * [`cli`] / [`table`] — the experiment binaries' shared flags and
//!   text-table rendering.
//!
//! # Example
//!
//! ```
//! use tangram_core::engine::PolicyKind;
//! use tangram_harness::{run_grid, SweepGrid, TraceKind, WorkloadSpec};
//! use tangram_types::ids::SceneId;
//!
//! let mut grid = SweepGrid::named("doc");
//! grid.policies = vec![PolicyKind::Tangram, PolicyKind::Elf];
//! grid.seeds = vec![7];
//! grid.slos_s = vec![1.0];
//! grid.bandwidths_mbps = vec![40.0];
//! grid.workloads = vec![WorkloadSpec::single(SceneId::new(1), 4, TraceKind::Proxy)];
//! assert_eq!(grid.cell_count(), 2);
//!
//! let report = run_grid(&grid, 2);
//! assert_eq!(report.cells.len(), 2);
//! // Parallel fan-out is byte-identical to a sequential run.
//! assert_eq!(report.to_json(), run_grid(&grid, 1).to_json());
//! ```

pub mod cli;
pub mod grid;
pub mod json;
pub mod pool;
pub mod presets;
pub mod report;
pub mod runner;
pub mod scenario_file;
pub mod table;
pub mod toml;

pub use cli::ExpOpts;
pub use grid::{
    AdmissionSpec, ArrivalSpec, FairnessSpec, ScenarioSpec, SweepCell, SweepGrid, TraceKind,
    WorkloadSpec,
};
pub use pool::parallel_map;
pub use report::{gate, BenchReport, CellReport, GateConfig, SCHEMA_VERSION};
pub use runner::{
    bench_report, run_grid, run_grid_full, run_scenario, run_scenario_sharded, run_scenario_traced,
    CellOutcome,
};
pub use scenario_file::{RunSpec, ScenarioFile};
pub use table::TextTable;
pub use toml::{TomlDocument, TomlError, TomlValue};
