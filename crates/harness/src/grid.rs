//! Declarative sweep grids.
//!
//! An experiment is the cartesian product of its axes — policy × seed ×
//! workload × bandwidth × SLO × slack multiplier — exactly the shape of
//! the paper's Fig. 8/12/13 evaluations. [`SweepGrid`] names the axes
//! once; [`SweepGrid::cells`] enumerates every cell in a fixed order so a
//! parallel run can be reassembled bit-for-bit identical to a sequential
//! one.
//!
//! Each cell carries two *derived* seeds, forked from the cell's
//! seed-axis value via [`DetRng::derive_seed`]:
//!
//! * `trace_seed` drives workload construction, shared by every cell on
//!   the same (workload, seed) pair, so policies are compared over
//!   byte-identical camera traces (paired comparison, as in the paper);
//! * `engine_seed` seeds the engine's own stochastic substrates, likewise
//!   shared across policy/bandwidth/SLO so only the axis under test
//!   varies.

use tangram_core::admission::{AdmissionPolicy, AlwaysAdmit, QueueDepthThreshold, SloShedder};
use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::fairness::{DrrConfig, DrrIngress};
use tangram_core::faults::FaultSpec;
use tangram_core::online::ArrivalProcess;
use tangram_sim::rng::DetRng;
use tangram_types::ids::SceneId;
use tangram_types::time::SimDuration;

/// Which trace pipeline builds a workload's cameras.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Ground-truth-driven stochastic proxy: fast, no rasters.
    Proxy,
    /// Full pixel pipeline (Stauffer–Grimson GMM on rendered rasters).
    Gmm,
}

impl TraceKind {
    /// Stable name used in `BENCH_*.json`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Proxy => "proxy",
            TraceKind::Gmm => "gmm",
        }
    }

    /// Parses the stable name back.
    #[must_use]
    pub fn from_name(name: &str) -> Option<TraceKind> {
        match name {
            "proxy" => Some(TraceKind::Proxy),
            "gmm" => Some(TraceKind::Gmm),
            _ => None,
        }
    }
}

/// One workload axis entry: which cameras exist and what they observe.
///
/// A single-scene workload reproduces the paper's per-scene runs; a
/// multi-scene workload replays all its cameras into one engine run
/// (multi-camera load on a shared uplink).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Scene indices (1-based, as in `SceneId::new`), one camera each.
    pub scenes: Vec<u8>,
    /// Evaluation frames per camera.
    pub frames: usize,
    /// Trace pipeline.
    pub trace: TraceKind,
}

impl WorkloadSpec {
    /// A single-camera workload.
    #[must_use]
    pub fn single(scene: SceneId, frames: usize, trace: TraceKind) -> Self {
        Self {
            scenes: vec![scene.index()],
            frames,
            trace,
        }
    }

    /// One single-camera workload per scene (the paper's per-scene runs).
    #[must_use]
    pub fn per_scene(scenes: &[SceneId], frames: usize, trace: TraceKind) -> Vec<Self> {
        scenes
            .iter()
            .map(|&s| Self::single(s, frames, trace))
            .collect()
    }

    /// The scene ids.
    #[must_use]
    pub fn scene_ids(&self) -> Vec<SceneId> {
        self.scenes.iter().map(|&i| SceneId::new(i)).collect()
    }
}

/// How a streaming scenario's cameras pace their captures — the
/// declarative face of [`ArrivalProcess`] (stable names for
/// `BENCH_*.json`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Open-loop Poisson arrivals at mean `fps`.
    Poisson {
        /// Mean frame rate.
        fps: f64,
    },
    /// Markov-modulated calm/burst process.
    Bursty {
        /// Frame rate in the calm state.
        calm_fps: f64,
        /// Frame rate in the burst state.
        burst_fps: f64,
        /// Mean dwell time in the calm state, seconds.
        mean_calm_s: f64,
        /// Mean dwell time in the burst state, seconds.
        mean_burst_s: f64,
    },
    /// Sinusoidal day/night rate curve.
    Diurnal {
        /// Trough frame rate.
        min_fps: f64,
        /// Peak frame rate.
        max_fps: f64,
        /// Full day length, seconds.
        period_s: f64,
    },
}

impl ArrivalSpec {
    /// The engine-side process this spec configures.
    #[must_use]
    pub fn process(self) -> ArrivalProcess {
        match self {
            ArrivalSpec::Poisson { fps } => ArrivalProcess::Poisson { fps },
            ArrivalSpec::Bursty {
                calm_fps,
                burst_fps,
                mean_calm_s,
                mean_burst_s,
            } => ArrivalProcess::Bursty {
                calm_fps,
                burst_fps,
                mean_calm_s,
                mean_burst_s,
            },
            ArrivalSpec::Diurnal {
                min_fps,
                max_fps,
                period_s,
            } => ArrivalProcess::Diurnal {
                min_fps,
                max_fps,
                period_s,
            },
        }
    }

    /// Stable name used in `BENCH_*.json`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ArrivalSpec::Poisson { .. } => "poisson",
            ArrivalSpec::Bursty { .. } => "bursty",
            ArrivalSpec::Diurnal { .. } => "diurnal",
        }
    }
}

/// A streaming scenario: runs every cell through the event-driven
/// [`tangram_core::online::OnlineEngine`] instead of trace replay. The
/// cell's workload traces become per-camera *content pools*; arrival
/// timing, camera churn and tenant SLOs come from here.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Capture pacing for every camera.
    pub arrival: ArrivalSpec,
    /// Frames each camera emits before its stream ends (the content pool
    /// cycles; churny runs usually cut sessions short instead).
    pub frames_per_camera: usize,
    /// Camera `i` joins the stream at `i * join_stagger_s` — together
    /// with `session_s` this is the churn-rate axis.
    pub join_stagger_s: f64,
    /// Cameras leave this long after joining (`None` = stay until their
    /// budget runs out).
    pub session_s: Option<f64>,
    /// Tenant SLO classes, seconds, assigned to cameras round-robin — the
    /// tenant-mix axis. Empty = every camera uses the cell's SLO.
    pub tenant_slos_s: Vec<f64>,
    /// Declarative fault windows injected into the run (see
    /// [`tangram_core::faults`]). Empty = fault-free; the serialized
    /// `BENCH_*.json` omits the key so legacy scenarios keep their bytes.
    pub faults: Vec<FaultSpec>,
}

/// The declarative face of [`tangram_core::admission`]: which ingress
/// admission-control policy a cell runs, with stable names for
/// `BENCH_*.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionSpec {
    /// Admit everything (identical to running with no policy).
    Always,
    /// Shed once the scheduler queue reaches `max_queued` work items.
    QueueDepth {
        /// Admit while fewer than this many work items are queued.
        max_queued: usize,
    },
    /// The SLO-aware shedder: sheds doomed work and lower-class tenants
    /// first under overload.
    SloShedder {
        /// Estimated per-item service time, seconds.
        per_item_s: f64,
        /// Fraction of the tightest SLO the predicted ingress delay may
        /// reach before lower classes are shed.
        pressure: f64,
    },
}

impl AdmissionSpec {
    /// Stable name used in `BENCH_*.json` and report tables.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AdmissionSpec::Always => "always",
            AdmissionSpec::QueueDepth { .. } => "queue-depth",
            AdmissionSpec::SloShedder { .. } => "slo-shedder",
        }
    }

    /// Builds the engine-side policy. `tenant_slos_s` primes the
    /// SLO-aware shedder's class table (the scenario's tenant axis), so
    /// shedding priorities are right from the first arrival.
    #[must_use]
    pub fn build(&self, tenant_slos_s: &[f64]) -> Box<dyn AdmissionPolicy> {
        match *self {
            AdmissionSpec::Always => Box::new(AlwaysAdmit),
            AdmissionSpec::QueueDepth { max_queued } => {
                Box::new(QueueDepthThreshold::new(max_queued))
            }
            AdmissionSpec::SloShedder {
                per_item_s,
                pressure,
            } => {
                let classes: Vec<SimDuration> = tenant_slos_s
                    .iter()
                    .map(|&s| SimDuration::from_secs_f64(s))
                    .collect();
                Box::new(
                    SloShedder::new(SimDuration::from_secs_f64(per_item_s))
                        .with_pressure(pressure)
                        .with_classes(&classes),
                )
            }
        }
    }
}

/// The declarative face of [`tangram_core::fairness`]: a weighted-DRR
/// fair-ingress stage for every cell, with stable names for
/// `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessSpec {
    /// Per-class DRR weights, aligned with the cell's distinct tenant
    /// SLOs sorted ascending (tightest class first). Classes beyond the
    /// list fall back to weight 1.
    pub weights: Vec<f64>,
    /// Per-class ingress queue bound; arrivals past it are shed.
    pub queue_capacity: usize,
    /// DRR service-round interval, seconds.
    pub tick_s: f64,
    /// Credits per weight unit per round; with `tick_s` this sets the
    /// ingress service rate (`Σ weights × quantum / tick_s` items/s).
    pub quantum: f64,
    /// Whether the Tangram scheduler also runs admission-aware (consults
    /// the predicted backend drain before dispatching).
    pub admission_aware: bool,
}

impl FairnessSpec {
    /// Stable name used in `BENCH_*.json` and report tables.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        "drr"
    }

    /// Builds the engine-side ingress. `tenant_slos_s` is the cell's
    /// tenant mix (the scenario axis); a cell without one runs a single
    /// class at `default_slo_s`.
    #[must_use]
    pub fn build(&self, tenant_slos_s: &[f64], default_slo_s: f64) -> DrrIngress {
        let mut slos: Vec<f64> = if tenant_slos_s.is_empty() {
            vec![default_slo_s]
        } else {
            tenant_slos_s.to_vec()
        };
        slos.sort_by(|a, b| a.partial_cmp(b).expect("finite SLO"));
        slos.dedup();
        let classes = slos
            .iter()
            .enumerate()
            .map(|(i, &slo_s)| {
                (
                    SimDuration::from_secs_f64(slo_s),
                    self.weights.get(i).copied().unwrap_or(1.0),
                )
            })
            .collect();
        DrrIngress::new(&DrrConfig {
            classes,
            queue_capacity: self.queue_capacity,
            quantum: self.quantum,
            tick: SimDuration::from_secs_f64(self.tick_s),
        })
    }
}

/// A declarative experiment: the cartesian product of its axes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Experiment name; `BENCH_<name>.json` is derived from it.
    pub name: String,
    /// Policies under test.
    pub policies: Vec<PolicyKind>,
    /// Replicate seeds; every derived stream forks from these.
    pub seeds: Vec<u64>,
    /// SLO axis, seconds.
    pub slos_s: Vec<f64>,
    /// Uplink bandwidth axis, Mbps.
    pub bandwidths_mbps: Vec<f64>,
    /// Estimator slack-multiplier axis (the paper's k; usually `[3.0]`).
    pub sigma_multipliers: Vec<f64>,
    /// Workload axis.
    pub workloads: Vec<WorkloadSpec>,
    /// MArk's per-bandwidth timeout lookup `(bandwidth_mbps, timeout_s)`;
    /// cells at unlisted bandwidths fall back to the engine default
    /// (half the SLO).
    pub mark_timeouts_s: Vec<(f64, f64)>,
    /// Camera frame-rate override for every cell (`None` = engine
    /// default).
    pub max_fps: Option<f64>,
    /// Backend instance-cap override for every cell. The outer `None`
    /// keeps the engine default; `Some(None)` means unlimited scale-out.
    pub max_instances: Option<Option<usize>>,
    /// Streaming-scenario axis: empty (the default) replays traces
    /// through the legacy batch path; non-empty runs every cell on the
    /// event-driven engine with generated arrivals, churn and tenants,
    /// once per scenario (cross-product with every other axis). A single
    /// entry reproduces the former `scenario` override byte-for-byte.
    pub scenarios: Vec<ScenarioSpec>,
    /// Admission-control axis: empty (the default) runs with no ingress
    /// policy; non-empty crosses every cell with each policy.
    pub admission: Vec<AdmissionSpec>,
    /// Fair-ingress axis: empty (the default) feeds admitted arrivals to
    /// the policy directly; non-empty crosses every cell with each
    /// weighted-DRR stage.
    pub fairness: Vec<FairnessSpec>,
    /// Record a runtime event trace per cell (see `tangram_trace`).
    /// Execution-only: the flag is *not* part of the serialized
    /// `BENCH_*.json` schema (trace capture never changes report bytes),
    /// so `from_json` always reconstructs it as `false`.
    pub capture_traces: bool,
    /// Engine shard count for streaming-scenario cells (see
    /// [`tangram_core::online::OnlineEngine::set_shards`]). Execution-only
    /// like `capture_traces`: sharding is byte-invisible in every report,
    /// so the field is *not* serialized and `from_json` reconstructs it
    /// as 1.
    pub shards: usize,
    /// Per-shard credit window override for streaming-scenario cells
    /// (see [`tangram_core::online::OnlineEngine::set_credit_window`]).
    /// Execution-only like `shards`: the window bounds shard run-ahead,
    /// never ordering, so `None` (the production window) and any
    /// explicit value produce byte-identical reports — pinned by the
    /// `CREDIT_WINDOW=1` case in `tests/harness_determinism.rs`. Not
    /// serialized; `from_json` reconstructs it as `None`.
    pub credit_window: Option<usize>,
}

impl SweepGrid {
    /// A grid with empty axes (fill in what the experiment sweeps;
    /// `sigma_multipliers` defaults to the paper's k = 3).
    #[must_use]
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            policies: Vec::new(),
            seeds: Vec::new(),
            slos_s: Vec::new(),
            bandwidths_mbps: Vec::new(),
            sigma_multipliers: vec![3.0],
            workloads: Vec::new(),
            mark_timeouts_s: Vec::new(),
            max_fps: None,
            max_instances: None,
            scenarios: Vec::new(),
            admission: Vec::new(),
            fairness: Vec::new(),
            capture_traces: false,
            shards: 1,
            credit_window: None,
        }
    }

    /// Number of cells the product spans.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.scenarios.len().max(1)
            * self.policies.len()
            * self.bandwidths_mbps.len()
            * self.slos_s.len()
            * self.sigma_multipliers.len()
            * self.seeds.len()
            * self.admission.len().max(1)
            * self.fairness.len().max(1)
    }

    /// Enumerates every cell in a fixed order (workload-major, then
    /// scenario, policy, bandwidth, SLO, sigma, seed, admission,
    /// fairness; absent scenario/admission/fairness axes contribute a
    /// single pass-through iteration, so legacy grids keep their exact
    /// cell order). The order — and everything else about a cell — is
    /// independent of how many workers later run it.
    #[must_use]
    pub fn cells(&self) -> Vec<SweepCell> {
        // Optional axes iterate once as `None` when unset.
        let opt = |len: usize| -> Vec<Option<usize>> {
            if len == 0 {
                vec![None]
            } else {
                (0..len).map(Some).collect()
            }
        };
        let scenario_axis = opt(self.scenarios.len());
        let admission_axis = opt(self.admission.len());
        let fairness_axis = opt(self.fairness.len());
        let mut cells = Vec::with_capacity(self.cell_count());
        for (workload_index, _) in self.workloads.iter().enumerate() {
            for &scenario_index in &scenario_axis {
                for &policy in &self.policies {
                    for &bandwidth_mbps in &self.bandwidths_mbps {
                        for &slo_s in &self.slos_s {
                            for &sigma_multiplier in &self.sigma_multipliers {
                                for &seed in &self.seeds {
                                    for &admission_index in &admission_axis {
                                        for &fairness_index in &fairness_axis {
                                            let root = DetRng::new(seed);
                                            cells.push(SweepCell {
                                                index: cells.len(),
                                                policy,
                                                seed,
                                                slo_s,
                                                bandwidth_mbps,
                                                sigma_multiplier,
                                                workload_index,
                                                scenario_index,
                                                admission_index,
                                                fairness_index,
                                                trace_seed: root.derive_seed(
                                                    "harness-trace",
                                                    workload_index as u64,
                                                ),
                                                engine_seed: root.derive_seed(
                                                    "harness-engine",
                                                    workload_index as u64,
                                                ),
                                                mark_timeout_s: self
                                                    .mark_timeout_for(bandwidth_mbps),
                                                max_fps: self.max_fps,
                                                max_instances: self.max_instances,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The MArk timeout configured for `bandwidth_mbps`, if any.
    #[must_use]
    pub fn mark_timeout_for(&self, bandwidth_mbps: f64) -> Option<f64> {
        self.mark_timeouts_s
            .iter()
            .find(|(bw, _)| (*bw - bandwidth_mbps).abs() < 1e-9)
            .map(|(_, t)| *t)
    }
}

/// One fully-resolved cell of a [`SweepGrid`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position in [`SweepGrid::cells`] order.
    pub index: usize,
    /// Policy under test.
    pub policy: PolicyKind,
    /// The seed-axis value this cell replicates.
    pub seed: u64,
    /// SLO, seconds.
    pub slo_s: f64,
    /// Uplink bandwidth, Mbps.
    pub bandwidth_mbps: f64,
    /// Estimator slack multiplier.
    pub sigma_multiplier: f64,
    /// Index into [`SweepGrid::workloads`].
    pub workload_index: usize,
    /// Index into [`SweepGrid::scenarios`] (`None` = trace replay).
    pub scenario_index: Option<usize>,
    /// Index into [`SweepGrid::admission`] (`None` = no ingress policy).
    pub admission_index: Option<usize>,
    /// Index into [`SweepGrid::fairness`] (`None` = no fair ingress).
    pub fairness_index: Option<usize>,
    /// Derived seed for workload/trace construction (shared across
    /// policies at the same workload × seed).
    pub trace_seed: u64,
    /// Derived seed for the engine's stochastic substrates.
    pub engine_seed: u64,
    /// MArk timeout for this cell's bandwidth, seconds.
    pub mark_timeout_s: Option<f64>,
    /// Frame-rate override.
    pub max_fps: Option<f64>,
    /// Instance-cap override.
    pub max_instances: Option<Option<usize>>,
}

impl SweepCell {
    /// Materialises the engine configuration for this cell.
    #[must_use]
    pub fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig {
            policy: self.policy,
            slo: SimDuration::from_secs_f64(self.slo_s),
            bandwidth_mbps: self.bandwidth_mbps,
            sigma_multiplier: self.sigma_multiplier,
            mark_timeout: self.mark_timeout_s.map(SimDuration::from_secs_f64),
            seed: self.engine_seed,
            ..EngineConfig::default()
        };
        if let Some(fps) = self.max_fps {
            config.max_fps = fps;
        }
        if let Some(cap) = self.max_instances {
            config.max_instances = cap;
        }
        config
    }
}

/// Parses a [`PolicyKind`] from its display name (the inverse of
/// [`PolicyKind::name`]), for reading grids back out of `BENCH_*.json`.
#[must_use]
pub fn policy_from_name(name: &str) -> Option<PolicyKind> {
    [
        PolicyKind::Tangram,
        PolicyKind::Clipper,
        PolicyKind::Elf,
        PolicyKind::Mark,
        PolicyKind::FullFrame,
        PolicyKind::MaskedFrame,
    ]
    .into_iter()
    .find(|p| p.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        let mut grid = SweepGrid::named("tiny");
        grid.policies = vec![PolicyKind::Tangram, PolicyKind::Elf];
        grid.seeds = vec![7, 8];
        grid.slos_s = vec![1.0];
        grid.bandwidths_mbps = vec![20.0, 40.0];
        grid.workloads = vec![WorkloadSpec::single(SceneId::new(1), 10, TraceKind::Proxy)];
        grid
    }

    #[test]
    fn cell_count_matches_product() {
        let grid = tiny_grid();
        assert_eq!(grid.cell_count(), 2 * 2 * 2);
        assert_eq!(grid.cells().len(), grid.cell_count());
    }

    #[test]
    fn cell_indices_are_dense_and_ordered() {
        let cells = tiny_grid().cells();
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn trace_seed_is_paired_across_policies() {
        let cells = tiny_grid().cells();
        let tangram: Vec<_> = cells
            .iter()
            .filter(|c| c.policy == PolicyKind::Tangram && c.seed == 7)
            .collect();
        let elf: Vec<_> = cells
            .iter()
            .filter(|c| c.policy == PolicyKind::Elf && c.seed == 7)
            .collect();
        assert_eq!(tangram[0].trace_seed, elf[0].trace_seed);
        assert_eq!(tangram[0].engine_seed, elf[0].engine_seed);
        // …but replicate seeds decorrelate.
        let other: Vec<_> = cells.iter().filter(|c| c.seed == 8).collect();
        assert_ne!(tangram[0].trace_seed, other[0].trace_seed);
    }

    #[test]
    fn mark_timeout_lookup() {
        let mut grid = tiny_grid();
        grid.mark_timeouts_s = vec![(20.0, 0.55), (40.0, 0.45)];
        assert_eq!(grid.mark_timeout_for(20.0), Some(0.55));
        assert_eq!(grid.mark_timeout_for(80.0), None);
        let cell = &grid.cells()[0];
        assert_eq!(
            cell.mark_timeout_s,
            grid.mark_timeout_for(cell.bandwidth_mbps)
        );
    }

    #[test]
    fn engine_config_reflects_cell() {
        let mut grid = tiny_grid();
        grid.max_fps = Some(5.0);
        grid.max_instances = Some(None);
        let cell = &grid.cells()[0];
        let config = cell.engine_config();
        assert_eq!(config.policy, cell.policy);
        assert_eq!(config.seed, cell.engine_seed);
        assert!((config.max_fps - 5.0).abs() < 1e-12);
        assert_eq!(config.max_instances, None);
        assert!((config.slo.as_secs_f64() - cell.slo_s).abs() < 1e-12);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            PolicyKind::Tangram,
            PolicyKind::Clipper,
            PolicyKind::Elf,
            PolicyKind::Mark,
            PolicyKind::FullFrame,
            PolicyKind::MaskedFrame,
        ] {
            assert_eq!(policy_from_name(p.name()), Some(p));
        }
        assert_eq!(policy_from_name("nope"), None);
    }

    #[test]
    fn arrival_specs_map_to_engine_processes() {
        use tangram_core::online::ArrivalProcess;
        assert_eq!(
            ArrivalSpec::Poisson { fps: 5.0 }.process(),
            ArrivalProcess::Poisson { fps: 5.0 }
        );
        assert_eq!(ArrivalSpec::Poisson { fps: 5.0 }.kind(), "poisson");
        assert_eq!(
            ArrivalSpec::Bursty {
                calm_fps: 1.0,
                burst_fps: 9.0,
                mean_calm_s: 2.0,
                mean_burst_s: 0.5
            }
            .kind(),
            "bursty"
        );
        assert_eq!(
            ArrivalSpec::Diurnal {
                min_fps: 1.0,
                max_fps: 8.0,
                period_s: 30.0
            }
            .kind(),
            "diurnal"
        );
    }

    #[test]
    fn grids_default_to_trace_replay() {
        let grid = SweepGrid::named("x");
        assert!(grid.scenarios.is_empty());
        assert!(grid.admission.is_empty());
        assert!(grid.fairness.is_empty());
    }

    #[test]
    fn fairness_axis_multiplies_the_product() {
        let drr = |aware: bool| FairnessSpec {
            weights: vec![3.0, 1.0],
            queue_capacity: 16,
            tick_s: 0.02,
            quantum: 1.0,
            admission_aware: aware,
        };
        let mut grid = tiny_grid();
        let base = grid.cell_count();
        grid.fairness = vec![drr(false), drr(true)];
        assert_eq!(grid.cell_count(), base * 2);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.cell_count());
        // Fairness is the innermost axis; both indices resolve.
        assert_eq!(cells[0].fairness_index, Some(0));
        assert_eq!(cells[1].fairness_index, Some(1));
        assert_eq!(cells[0].policy, cells[1].policy);
        // Paired comparison holds: the fairness axis shares seeds.
        assert_eq!(cells[0].trace_seed, cells[1].trace_seed);
        assert_eq!(cells[0].engine_seed, cells[1].engine_seed);
    }

    #[test]
    fn fairness_specs_build_engine_ingresses() {
        let spec = FairnessSpec {
            weights: vec![3.0, 1.0],
            queue_capacity: 8,
            tick_s: 0.02,
            quantum: 1.0,
            admission_aware: false,
        };
        assert_eq!(spec.kind(), "drr");
        // Tenant mixes dedup and sort tightest-first; the weights align.
        let ingress = spec.build(&[1.5, 0.8, 1.5], 1.0);
        assert_eq!(ingress.peak_depths().len(), 2);
        assert_eq!(ingress.peak_depths()[0].0, SimDuration::from_secs_f64(0.8));
        // Without a tenant mix the cell's own SLO forms a single class.
        let single = spec.build(&[], 1.0);
        assert_eq!(single.peak_depths(), vec![(SimDuration::from_secs(1), 0)]);
    }

    #[test]
    fn scenario_and_admission_axes_multiply_the_product() {
        use crate::presets::churn_scenario;
        let mut grid = tiny_grid();
        let base = grid.cell_count();
        grid.scenarios = vec![churn_scenario(6.0, 10), churn_scenario(12.0, 10)];
        grid.admission = vec![
            AdmissionSpec::Always,
            AdmissionSpec::SloShedder {
                per_item_s: 0.04,
                pressure: 0.5,
            },
        ];
        assert_eq!(grid.cell_count(), base * 4);
        let cells = grid.cells();
        assert_eq!(cells.len(), grid.cell_count());
        // Both optional indices are resolved on every cell, and adjacent
        // cells differ in admission first (innermost axis).
        assert_eq!(cells[0].scenario_index, Some(0));
        assert_eq!(cells[0].admission_index, Some(0));
        assert_eq!(cells[1].admission_index, Some(1));
        assert_eq!(cells[1].scenario_index, Some(0));
        assert!(cells.iter().any(|c| c.scenario_index == Some(1)));
        // Paired comparison holds across the new axes: same workload ×
        // seed × scenario cells share trace and engine seeds.
        assert_eq!(cells[0].trace_seed, cells[1].trace_seed);
        assert_eq!(cells[0].engine_seed, cells[1].engine_seed);
    }

    #[test]
    fn admission_specs_build_engine_policies() {
        assert_eq!(AdmissionSpec::Always.kind(), "always");
        assert_eq!(
            AdmissionSpec::QueueDepth { max_queued: 8 }.kind(),
            "queue-depth"
        );
        let spec = AdmissionSpec::SloShedder {
            per_item_s: 0.05,
            pressure: 0.5,
        };
        assert_eq!(spec.kind(), "slo-shedder");
        // Policies build without panicking, classes primed or not.
        let _ = AdmissionSpec::Always.build(&[]);
        let _ = spec.build(&[0.8, 1.5]);
    }

    #[test]
    fn trace_kind_names_round_trip() {
        assert_eq!(
            TraceKind::from_name(TraceKind::Proxy.name()),
            Some(TraceKind::Proxy)
        );
        assert_eq!(
            TraceKind::from_name(TraceKind::Gmm.name()),
            Some(TraceKind::Gmm)
        );
        assert_eq!(TraceKind::from_name("x"), None);
    }
}
