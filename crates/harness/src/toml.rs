//! A minimal, line-tracking TOML reader.
//!
//! The vendored `toml`/`serde` crates are compile-only marker stubs, so
//! the scenario library carries its own parser, mirroring what
//! [`crate::json`] does for `BENCH_*.json` — but where the JSON model
//! optimises for byte-deterministic *output*, this one optimises for
//! *diagnosable input*: every table header and every `key = value`
//! entry remembers the 1-based line it came from, so a scenario file
//! that fails validation is rejected with an error naming the offending
//! line (see [`crate::scenario_file`]).
//!
//! The dialect is the subset scenario files need — bare keys, string /
//! integer / float / boolean scalars, single-line arrays, `[table]` and
//! `[[array-of-table]]` headers, `#` comments — with TOML's duplicate
//! key/table rules enforced. Dotted keys, inline tables and multi-line
//! strings are rejected rather than misparsed.

/// A parse or structure error, carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.line, self.message)
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

/// A TOML scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic (double-quoted) string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Float(v) => Some(*v),
            TomlValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TomlValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short type name for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
        }
    }
}

/// One `key = value` entry, with the line it was written on.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlEntry {
    /// The bare key.
    pub key: String,
    /// The parsed value.
    pub value: TomlValue,
    /// 1-based source line.
    pub line: usize,
}

/// One `[name]` or `[[name]]` table, with its entries in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlTable {
    /// The table name (dotted names are rejected at parse time).
    pub name: String,
    /// `true` for `[[name]]` array-of-table elements.
    pub is_array: bool,
    /// 1-based line of the header.
    pub line: usize,
    /// Entries under this header.
    pub entries: Vec<TomlEntry>,
}

impl TomlTable {
    /// Looks up an entry by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&TomlEntry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed document: root-level entries plus tables in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlDocument {
    /// Entries before the first table header.
    pub root: Vec<TomlEntry>,
    /// Tables in file order (`[[x]]` elements stay separate).
    pub tables: Vec<TomlTable>,
}

impl TomlDocument {
    /// Parses a document.
    ///
    /// # Errors
    ///
    /// Returns a [`TomlError`] naming the 1-based line of the first
    /// syntax problem, duplicate key, or duplicate plain table.
    pub fn parse(input: &str) -> Result<TomlDocument, TomlError> {
        let mut doc = TomlDocument::default();
        for (index, raw) in input.lines().enumerate() {
            let line_no = index + 1;
            let stripped = strip_comment(raw, line_no)?;
            let line = stripped.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(inner) = line.strip_prefix("[[") {
                let Some(name) = inner.strip_suffix("]]") else {
                    return err(line_no, "unterminated [[table]] header");
                };
                doc.tables
                    .push(table_header(name.trim(), true, line_no, &doc.tables)?);
            } else if let Some(inner) = line.strip_prefix('[') {
                let Some(name) = inner.strip_suffix(']') else {
                    return err(line_no, "unterminated [table] header");
                };
                doc.tables
                    .push(table_header(name.trim(), false, line_no, &doc.tables)?);
            } else {
                let entry = parse_entry(line, line_no)?;
                let siblings = match doc.tables.last_mut() {
                    Some(table) => &mut table.entries,
                    None => &mut doc.root,
                };
                if let Some(previous) = siblings.iter().find(|e| e.key == entry.key) {
                    return err(
                        line_no,
                        format!(
                            "duplicate key `{}` (first defined on line {})",
                            entry.key, previous.line
                        ),
                    );
                }
                siblings.push(entry);
            }
        }
        Ok(doc)
    }

    /// The first `[name]` table with this name, if any.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&TomlTable> {
        self.tables.iter().find(|t| t.name == name && !t.is_array)
    }

    /// Every `[[name]]` element with this name, in file order.
    #[must_use]
    pub fn array_tables(&self, name: &str) -> Vec<&TomlTable> {
        self.tables
            .iter()
            .filter(|t| t.name == name && t.is_array)
            .collect()
    }

    /// Looks up a root-level entry by key.
    #[must_use]
    pub fn root_entry(&self, key: &str) -> Option<&TomlEntry> {
        self.root.iter().find(|e| e.key == key)
    }
}

fn table_header(
    name: &str,
    is_array: bool,
    line: usize,
    existing: &[TomlTable],
) -> Result<TomlTable, TomlError> {
    if name.is_empty() || !name.chars().all(is_bare_key_char) {
        return err(line, format!("invalid table name `{name}`"));
    }
    if let Some(previous) = existing.iter().find(|t| t.name == name) {
        // A plain table may appear once; only [[x]] elements repeat.
        if !is_array || !previous.is_array {
            return err(
                line,
                format!(
                    "table `{name}` already defined on line {} (use [[{name}]] for repetition)",
                    previous.line
                ),
            );
        }
    }
    Ok(TomlTable {
        name: name.to_string(),
        is_array,
        line,
        entries: Vec::new(),
    })
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Removes a trailing `#` comment, respecting string literals.
fn strip_comment(line: &str, line_no: usize) -> Result<&str, TomlError> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return Ok(&line[..i]),
            _ => {}
        }
        escaped = false;
    }
    if in_string {
        return err(line_no, "unterminated string");
    }
    Ok(line)
}

fn parse_entry(line: &str, line_no: usize) -> Result<TomlEntry, TomlError> {
    let Some(eq) = line.find('=') else {
        return err(line_no, format!("expected `key = value`, got `{line}`"));
    };
    let key = line[..eq].trim();
    if key.is_empty() || !key.chars().all(is_bare_key_char) {
        return err(line_no, format!("invalid key `{key}` (bare keys only)"));
    }
    let value_text = line[eq + 1..].trim();
    if value_text.is_empty() {
        return err(line_no, format!("key `{key}` has no value"));
    }
    let mut pos = 0usize;
    let value = parse_value(value_text.as_bytes(), &mut pos, line_no)?;
    if value_text[pos..].trim().is_empty() {
        Ok(TomlEntry {
            key: key.to_string(),
            value,
            line: line_no,
        })
    } else {
        err(
            line_no,
            format!("trailing input after value: `{}`", value_text[pos..].trim()),
        )
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, line_no: usize) -> Result<TomlValue, TomlError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err(line_no, "missing value"),
        Some(b'"') => parse_string(bytes, pos, line_no).map(TomlValue::Str),
        Some(b'[') => parse_array(bytes, pos, line_no),
        Some(b't') | Some(b'f') => parse_bool(bytes, pos, line_no),
        Some(_) => parse_number(bytes, pos, line_no),
    }
}

fn parse_bool(bytes: &[u8], pos: &mut usize, line_no: usize) -> Result<TomlValue, TomlError> {
    for (word, value) in [("true", true), ("false", false)] {
        if bytes[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            return Ok(TomlValue::Bool(value));
        }
    }
    err(line_no, "invalid literal (expected true/false)")
}

fn parse_string(bytes: &[u8], pos: &mut usize, line_no: usize) -> Result<String, TomlError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err(line_no, "unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    _ => return err(line_no, "unsupported string escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| TomlError {
                    line: line_no,
                    message: "bad utf8".to_string(),
                })?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, line_no: usize) -> Result<TomlValue, TomlError> {
    *pos += 1; // opening bracket
    let mut items = Vec::new();
    loop {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => return err(line_no, "unterminated array"),
            Some(b']') => {
                *pos += 1;
                return Ok(TomlValue::Array(items));
            }
            Some(_) => {
                items.push(parse_value(bytes, pos, line_no)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {}
                    None => return err(line_no, "unterminated array"),
                    Some(_) => return err(line_no, "expected `,` or `]` in array"),
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize, line_no: usize) -> Result<TomlValue, TomlError> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' | b'+' | b'-' | b'.' | b'e' | b'E' | b'_' => *pos += 1,
            _ => break,
        }
    }
    let text: String = std::str::from_utf8(&bytes[start..*pos])
        .expect("ascii number chars")
        .chars()
        .filter(|&c| c != '_')
        .collect();
    if text.is_empty() {
        return err(line_no, "invalid value");
    }
    let float = text.contains(['.', 'e', 'E']);
    if !float {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(TomlValue::Int(v));
        }
    }
    match text.parse::<f64>() {
        Ok(v) => Ok(TomlValue::Float(v)),
        Err(_) => err(line_no, format!("invalid number `{text}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_entries_and_comments() {
        let doc = TomlDocument::parse(
            "# scenario\nname = \"diurnal\" # inline\n\n[run]\ncameras = 4\nbandwidth_mbps = 80.0\n\n[[fault]]\nkind = \"brownout\"\nactive = true\nweights = [3.0, 1.0]\n",
        )
        .unwrap();
        assert_eq!(
            doc.root_entry("name").unwrap().value,
            TomlValue::Str("diurnal".to_string())
        );
        assert_eq!(doc.root_entry("name").unwrap().line, 2);
        let run = doc.table("run").unwrap();
        assert_eq!(run.line, 4);
        assert_eq!(run.get("cameras").unwrap().value, TomlValue::Int(4));
        assert_eq!(
            run.get("bandwidth_mbps").unwrap().value,
            TomlValue::Float(80.0)
        );
        let faults = doc.array_tables("fault");
        assert_eq!(faults.len(), 1);
        assert_eq!(
            faults[0].get("active").unwrap().value,
            TomlValue::Bool(true)
        );
        assert_eq!(
            faults[0].get("weights").unwrap().value,
            TomlValue::Array(vec![TomlValue::Float(3.0), TomlValue::Float(1.0)])
        );
    }

    #[test]
    fn errors_carry_the_line_number() {
        let cases = [
            ("a = 1\nb ==\n", 2, "invalid value"),
            ("a = 1\n\nnot a pair\n", 3, "expected `key = value`"),
            ("[run\n", 1, "unterminated [table] header"),
            ("a = \"oops\n", 1, "unterminated string"),
            ("x = [1, 2\n", 1, "unterminated array"),
            ("x = zebra\n", 1, "invalid value"),
        ];
        for (input, line, needle) in cases {
            let e = TomlDocument::parse(input).unwrap_err();
            assert_eq!(e.line, line, "{input:?} -> {e}");
            assert!(e.message.contains(needle), "{input:?} -> {e}");
        }
    }

    #[test]
    fn duplicate_keys_and_tables_are_rejected() {
        let e = TomlDocument::parse("[run]\nseed = 1\nseed = 2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate key `seed`"), "{e}");
        assert!(e.message.contains("line 2"), "{e}");

        let e = TomlDocument::parse("[run]\n[run]\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("already defined on line 1"), "{e}");

        // Array tables repeat freely.
        assert!(TomlDocument::parse("[[fault]]\n[[fault]]\n").is_ok());
        // …but mixing [x] and [[x]] is a conflict either way around.
        assert!(TomlDocument::parse("[fault]\n[[fault]]\n").is_err());
        assert!(TomlDocument::parse("[[fault]]\n[fault]\n").is_err());
    }

    #[test]
    fn value_accessors_and_widening() {
        let doc = TomlDocument::parse("i = 3\nf = 0.5\nneg = -2\n").unwrap();
        assert_eq!(doc.root_entry("i").unwrap().value.as_f64(), Some(3.0));
        assert_eq!(doc.root_entry("i").unwrap().value.as_u64(), Some(3));
        assert_eq!(doc.root_entry("f").unwrap().value.as_u64(), None);
        assert_eq!(doc.root_entry("neg").unwrap().value.as_u64(), None);
        assert_eq!(doc.root_entry("neg").unwrap().value.as_f64(), Some(-2.0));
        assert_eq!(doc.root_entry("f").unwrap().value.type_name(), "float");
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let doc = TomlDocument::parse("s = \"a # b\"\n").unwrap();
        assert_eq!(doc.root_entry("s").unwrap().value.as_str(), Some("a # b"));
    }

    #[test]
    fn underscored_integers_parse() {
        let doc = TomlDocument::parse("n = 1_000_000\n").unwrap();
        assert_eq!(
            doc.root_entry("n").unwrap().value,
            TomlValue::Int(1_000_000)
        );
    }
}
