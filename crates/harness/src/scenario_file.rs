//! Declarative scenario files (`config/scenarios/*.toml`).
//!
//! A scenario file is the authoritative, reviewable description of one
//! hard streaming run: the fleet (`[run]`), the streaming shape
//! (`[scenario]` + `[arrival]`), the declarative fault schedule
//! (`[[fault]]`, see [`tangram_core::faults`]), and optional ingress
//! stages (`[admission]`, `[fairness]`). Files are parsed with the
//! line-tracking reader in [`crate::toml`] and validated at load time —
//! unknown keys, out-of-range rates and overlapping same-kind fault
//! windows are rejected with an error naming the offending line, so a
//! bad scenario never silently runs as something else.
//!
//! The grammar:
//!
//! ```toml
//! name = "brownout-squeeze"          # required, non-empty
//! description = "what it stresses"   # required
//!
//! [run]                              # required: the fleet and the cell
//! cameras = 4                        # >= 1
//! pool_frames = 8                    # content pool per camera, >= 1
//! scenes = [1, 2, 3, 4]              # optional; cameras cycle it (1-5)
//! bandwidth_mbps = 80.0              # > 0
//! slo_s = 1.0                        # > 0
//! seed = 42
//! max_instances = 8                  # optional; integer or "unlimited"
//!
//! [scenario]                         # required: the streaming shape
//! frames_per_camera = 40             # >= 1
//! join_stagger_s = 0.5               # >= 0
//! session_s = 20.0                   # optional, > 0
//! tenant_slos_s = [0.8, 1.5]         # optional, each > 0
//!
//! [arrival]                          # required: poisson|bursty|diurnal
//! kind = "poisson"
//! fps = 6.0                          # rates must be in (0, 240]
//!
//! [[fault]]                          # zero or more fault windows
//! kind = "brownout"                  # link_outage | latency_tail |
//! factor = 2.0                       #   cold_start_storm | camera_flap
//! at_s = 4.0                         #   | brownout
//! duration_s = 6.0                   # same-kind windows must not overlap
//!
//! [admission]                        # optional ingress stages
//! kind = "slo-shedder"
//! per_item_s = 0.02
//! pressure = 0.5
//!
//! [fairness]
//! weights = [3.0, 1.0]
//! queue_capacity = 16
//! tick_s = 0.02
//! quantum = 0.4
//! admission_aware = true
//! ```

use crate::grid::{AdmissionSpec, ArrivalSpec, FairnessSpec, ScenarioSpec};
use crate::presets::build_trace;
use crate::runner::run_scenario_sharded;
use crate::toml::{TomlDocument, TomlEntry, TomlError, TomlTable, TomlValue};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::faults::{FaultKind, FaultSpec};
use tangram_core::report::RunReport;
use tangram_core::workload::CameraTrace;
use tangram_trace::TraceLog;
use tangram_types::ids::{CameraId, SceneId};
use tangram_types::time::SimDuration;

/// Camera frame rates past this are rejected as out of range.
pub const MAX_RATE_FPS: f64 = 240.0;

/// The `[run]` table: the fleet and the single cell the scenario runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Fleet size.
    pub cameras: usize,
    /// Content-pool frames per camera (the generator cycles them).
    pub pool_frames: usize,
    /// Scene indices (1-based) the cameras cycle through.
    pub scenes: Vec<u8>,
    /// Uplink bandwidth, Mbps.
    pub bandwidth_mbps: f64,
    /// Cell SLO, seconds.
    pub slo_s: f64,
    /// Engine seed (traces and all stochastic substrates fork from it).
    pub seed: u64,
    /// Backend cap override: `None` keeps the engine default,
    /// `Some(None)` is unlimited scale-out.
    pub max_instances: Option<Option<usize>>,
}

/// One fully-parsed, validated scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFile {
    /// Stable scenario name (keys `BENCH_scenarios.json` rows).
    pub name: String,
    /// What the scenario stresses, for humans.
    pub description: String,
    /// The fleet and cell.
    pub run: RunSpec,
    /// The streaming shape, fault schedule included.
    pub scenario: ScenarioSpec,
    /// Optional ingress admission policy.
    pub admission: Option<AdmissionSpec>,
    /// Optional weighted-DRR fair ingress.
    pub fairness: Option<FairnessSpec>,
}

impl ScenarioFile {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// Returns a [`TomlError`] whose `line` names the offending source
    /// line (the table header line for missing-key errors).
    pub fn parse_str(text: &str) -> Result<ScenarioFile, TomlError> {
        let doc = TomlDocument::parse(text)?;
        check_layout(&doc)?;
        let name = root_string(&doc, "name")?;
        if name.is_empty() {
            return fail(
                doc.root_entry("name").expect("present").line,
                "name is empty",
            );
        }
        let description = root_string(&doc, "description")?;
        let run = parse_run(doc.table("run").ok_or_else(|| missing_table("run"))?)?;
        let arrival = parse_arrival(
            doc.table("arrival")
                .ok_or_else(|| missing_table("arrival"))?,
        )?;
        let scenario = parse_scenario(
            doc.table("scenario")
                .ok_or_else(|| missing_table("scenario"))?,
            arrival,
            parse_faults(&doc.array_tables("fault"))?,
        )?;
        let admission = doc.table("admission").map(parse_admission).transpose()?;
        let fairness = doc.table("fairness").map(parse_fairness).transpose()?;
        Ok(ScenarioFile {
            name,
            description,
            run,
            scenario,
            admission,
            fairness,
        })
    }

    /// Loads and validates one file; errors read `path:line: message`.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or any parse/validation error.
    pub fn load(path: &Path) -> Result<ScenarioFile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        ScenarioFile::parse_str(&text).map_err(|e| format!("{}:{e}", path.display()))
    }

    /// Loads every `*.toml` under `dir`, sorted by file name (so every
    /// consumer sees the library in the same deterministic order).
    ///
    /// # Errors
    ///
    /// Returns the first I/O or validation error, or a message when the
    /// directory holds no scenario files at all.
    pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, ScenarioFile)>, String> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("{}: no scenario files found", dir.display()));
        }
        paths
            .into_iter()
            .map(|p| ScenarioFile::load(&p).map(|s| (p, s)))
            .collect()
    }

    /// Renders the canonical TOML form (stable key order, shortest
    /// round-trip floats). `parse_str(to_toml(x)) == x` for any valid
    /// file — the round-trip property `tests/scenario_format.rs` holds
    /// the library to.
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "name = {}", toml_str(&self.name));
        let _ = writeln!(out, "description = {}", toml_str(&self.description));
        let _ = writeln!(out, "\n[run]");
        let _ = writeln!(out, "cameras = {}", self.run.cameras);
        let _ = writeln!(out, "pool_frames = {}", self.run.pool_frames);
        let _ = writeln!(
            out,
            "scenes = [{}]",
            self.run
                .scenes
                .iter()
                .map(u8::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "bandwidth_mbps = {:?}", self.run.bandwidth_mbps);
        let _ = writeln!(out, "slo_s = {:?}", self.run.slo_s);
        let _ = writeln!(out, "seed = {}", self.run.seed);
        match self.run.max_instances {
            None => {}
            Some(None) => {
                let _ = writeln!(out, "max_instances = \"unlimited\"");
            }
            Some(Some(n)) => {
                let _ = writeln!(out, "max_instances = {n}");
            }
        }
        let s = &self.scenario;
        let _ = writeln!(out, "\n[scenario]");
        let _ = writeln!(out, "frames_per_camera = {}", s.frames_per_camera);
        let _ = writeln!(out, "join_stagger_s = {:?}", s.join_stagger_s);
        if let Some(session_s) = s.session_s {
            let _ = writeln!(out, "session_s = {session_s:?}");
        }
        if !s.tenant_slos_s.is_empty() {
            let _ = writeln!(out, "tenant_slos_s = [{}]", float_list(&s.tenant_slos_s));
        }
        let _ = writeln!(out, "\n[arrival]");
        let _ = writeln!(out, "kind = \"{}\"", s.arrival.kind());
        match s.arrival {
            ArrivalSpec::Poisson { fps } => {
                let _ = writeln!(out, "fps = {fps:?}");
            }
            ArrivalSpec::Bursty {
                calm_fps,
                burst_fps,
                mean_calm_s,
                mean_burst_s,
            } => {
                let _ = writeln!(out, "calm_fps = {calm_fps:?}");
                let _ = writeln!(out, "burst_fps = {burst_fps:?}");
                let _ = writeln!(out, "mean_calm_s = {mean_calm_s:?}");
                let _ = writeln!(out, "mean_burst_s = {mean_burst_s:?}");
            }
            ArrivalSpec::Diurnal {
                min_fps,
                max_fps,
                period_s,
            } => {
                let _ = writeln!(out, "min_fps = {min_fps:?}");
                let _ = writeln!(out, "max_fps = {max_fps:?}");
                let _ = writeln!(out, "period_s = {period_s:?}");
            }
        }
        for fault in &s.faults {
            let _ = writeln!(out, "\n[[fault]]");
            let _ = writeln!(out, "kind = \"{}\"", fault.kind.name());
            match fault.kind {
                FaultKind::LinkOutage | FaultKind::ColdStartStorm => {}
                FaultKind::LatencyTail { factor } | FaultKind::Brownout { factor } => {
                    let _ = writeln!(out, "factor = {factor:?}");
                }
                FaultKind::CameraFlap {
                    mean_up_s,
                    mean_down_s,
                } => {
                    let _ = writeln!(out, "mean_up_s = {mean_up_s:?}");
                    let _ = writeln!(out, "mean_down_s = {mean_down_s:?}");
                }
            }
            let _ = writeln!(out, "at_s = {:?}", fault.at_s);
            let _ = writeln!(out, "duration_s = {:?}", fault.duration_s);
        }
        if let Some(admission) = &self.admission {
            let _ = writeln!(out, "\n[admission]");
            let _ = writeln!(out, "kind = \"{}\"", admission.kind());
            match *admission {
                AdmissionSpec::Always => {}
                AdmissionSpec::QueueDepth { max_queued } => {
                    let _ = writeln!(out, "max_queued = {max_queued}");
                }
                AdmissionSpec::SloShedder {
                    per_item_s,
                    pressure,
                } => {
                    let _ = writeln!(out, "per_item_s = {per_item_s:?}");
                    let _ = writeln!(out, "pressure = {pressure:?}");
                }
            }
        }
        if let Some(fairness) = &self.fairness {
            let _ = writeln!(out, "\n[fairness]");
            let _ = writeln!(out, "weights = [{}]", float_list(&fairness.weights));
            let _ = writeln!(out, "queue_capacity = {}", fairness.queue_capacity);
            let _ = writeln!(out, "tick_s = {:?}", fairness.tick_s);
            let _ = writeln!(out, "quantum = {:?}", fairness.quantum);
            let _ = writeln!(out, "admission_aware = {}", fairness.admission_aware);
        }
        out
    }

    /// The engine configuration of the scenario's single cell (Tangram,
    /// the file's link/SLO/seed, the fairness stage's admission-aware
    /// flag mirrored exactly as the grid runner does).
    #[must_use]
    pub fn engine_config(&self) -> EngineConfig {
        let mut config = EngineConfig {
            policy: PolicyKind::Tangram,
            slo: SimDuration::from_secs_f64(self.run.slo_s),
            bandwidth_mbps: self.run.bandwidth_mbps,
            seed: self.run.seed,
            ..EngineConfig::default()
        };
        if let Some(cap) = self.run.max_instances {
            config.max_instances = cap;
        }
        if let Some(fairness) = &self.fairness {
            config.scheduler_admission_aware = fairness.admission_aware;
        }
        config
    }

    /// Builds the fleet's content pools: `cameras` proxy traces cycling
    /// the file's scene list, camera ids re-stamped per index so cameras
    /// sharing a scene keep distinct identities (and distinct patch
    /// ids). A single-scene list is the content-correlated stitcher
    /// stress: every camera offers patches from the same scene geometry.
    #[must_use]
    pub fn build_traces(&self) -> Vec<CameraTrace> {
        (0..self.run.cameras)
            .map(|cam| {
                let scene = SceneId::new(self.run.scenes[cam % self.run.scenes.len()]);
                let mut trace = build_trace(
                    scene,
                    self.run.pool_frames,
                    self.run.seed,
                    crate::grid::TraceKind::Proxy,
                );
                trace.camera = CameraId::new(cam as u32);
                trace
            })
            .collect()
    }

    /// Runs the scenario end to end on `shards` engine shards,
    /// optionally capturing the runtime event trace. Deterministic in
    /// the file contents alone: byte-identical report and trace at any
    /// shard count.
    #[must_use]
    pub fn run(&self, capture: bool, shards: usize) -> (RunReport, Option<TraceLog>) {
        let traces = self.build_traces();
        run_scenario_sharded(
            &self.engine_config(),
            &traces,
            &self.scenario,
            self.admission.as_ref(),
            self.fairness.as_ref(),
            capture,
            shards,
            None,
        )
    }
}

fn fail<T>(line: usize, message: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        message: message.into(),
    })
}

fn missing_table(name: &str) -> TomlError {
    TomlError {
        line: 1,
        message: format!("missing required [{name}] table"),
    }
}

/// Rejects unknown root keys and unknown/mis-shaped tables up front.
fn check_layout(doc: &TomlDocument) -> Result<(), TomlError> {
    for entry in &doc.root {
        if !matches!(entry.key.as_str(), "name" | "description") {
            return fail(entry.line, format!("unknown top-level key `{}`", entry.key));
        }
    }
    for table in &doc.tables {
        let known_array = match table.name.as_str() {
            "run" | "scenario" | "arrival" | "admission" | "fairness" => false,
            "fault" => true,
            other => return fail(table.line, format!("unknown table [{other}]")),
        };
        if known_array != table.is_array {
            let (want, got) = if known_array {
                (format!("[[{}]]", table.name), format!("[{}]", table.name))
            } else {
                (format!("[{}]", table.name), format!("[[{}]]", table.name))
            };
            return fail(table.line, format!("{got} should be {want}"));
        }
    }
    Ok(())
}

fn root_string(doc: &TomlDocument, key: &str) -> Result<String, TomlError> {
    let entry = doc.root_entry(key).ok_or_else(|| TomlError {
        line: 1,
        message: format!("missing top-level key `{key}`"),
    })?;
    str_of(entry)
}

fn check_keys(table: &TomlTable, allowed: &[&str]) -> Result<(), TomlError> {
    for entry in &table.entries {
        if !allowed.contains(&entry.key.as_str()) {
            let shape = if table.is_array { "[[" } else { "[" };
            let close = if table.is_array { "]]" } else { "]" };
            return fail(
                entry.line,
                format!(
                    "unknown key `{}` in {shape}{}{close}",
                    entry.key, table.name
                ),
            );
        }
    }
    Ok(())
}

fn require<'t>(table: &'t TomlTable, key: &str) -> Result<&'t TomlEntry, TomlError> {
    table.get(key).ok_or_else(|| TomlError {
        line: table.line,
        message: format!("[{}] is missing required key `{}`", table.name, key),
    })
}

fn str_of(entry: &TomlEntry) -> Result<String, TomlError> {
    entry
        .value
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| TomlError {
            line: entry.line,
            message: format!(
                "key `{}`: expected string, got {}",
                entry.key,
                entry.value.type_name()
            ),
        })
}

fn f64_of(entry: &TomlEntry) -> Result<f64, TomlError> {
    let value = entry.value.as_f64().ok_or_else(|| TomlError {
        line: entry.line,
        message: format!(
            "key `{}`: expected number, got {}",
            entry.key,
            entry.value.type_name()
        ),
    })?;
    if value.is_finite() {
        Ok(value)
    } else {
        fail(entry.line, format!("key `{}` is not finite", entry.key))
    }
}

fn positive_f64(entry: &TomlEntry) -> Result<f64, TomlError> {
    let value = f64_of(entry)?;
    if value > 0.0 {
        Ok(value)
    } else {
        fail(
            entry.line,
            format!("key `{}` must be positive, got {value}", entry.key),
        )
    }
}

fn rate_fps(entry: &TomlEntry) -> Result<f64, TomlError> {
    let value = positive_f64(entry)?;
    if value <= MAX_RATE_FPS {
        Ok(value)
    } else {
        fail(
            entry.line,
            format!(
                "key `{}`: rate {value} out of range (0, {MAX_RATE_FPS}]",
                entry.key
            ),
        )
    }
}

fn u64_of(entry: &TomlEntry) -> Result<u64, TomlError> {
    entry.value.as_u64().ok_or_else(|| TomlError {
        line: entry.line,
        message: format!(
            "key `{}`: expected non-negative integer, got {}",
            entry.key,
            entry.value.type_name()
        ),
    })
}

fn count_of(entry: &TomlEntry) -> Result<usize, TomlError> {
    let value = u64_of(entry)? as usize;
    if value >= 1 {
        Ok(value)
    } else {
        fail(
            entry.line,
            format!("key `{}` must be at least 1", entry.key),
        )
    }
}

fn bool_of(entry: &TomlEntry) -> Result<bool, TomlError> {
    entry.value.as_bool().ok_or_else(|| TomlError {
        line: entry.line,
        message: format!(
            "key `{}`: expected boolean, got {}",
            entry.key,
            entry.value.type_name()
        ),
    })
}

fn positive_f64_list(entry: &TomlEntry) -> Result<Vec<f64>, TomlError> {
    let items = entry.value.as_array().ok_or_else(|| TomlError {
        line: entry.line,
        message: format!(
            "key `{}`: expected array, got {}",
            entry.key,
            entry.value.type_name()
        ),
    })?;
    items
        .iter()
        .map(|item| {
            let value = item.as_f64().filter(|v| v.is_finite() && *v > 0.0);
            value.ok_or_else(|| TomlError {
                line: entry.line,
                message: format!(
                    "key `{}`: every element must be a positive number",
                    entry.key
                ),
            })
        })
        .collect()
}

fn parse_run(table: &TomlTable) -> Result<RunSpec, TomlError> {
    check_keys(
        table,
        &[
            "cameras",
            "pool_frames",
            "scenes",
            "bandwidth_mbps",
            "slo_s",
            "seed",
            "max_instances",
        ],
    )?;
    let scenes = match table.get("scenes") {
        None => SceneId::all().map(|s| s.index()).collect(),
        Some(entry) => {
            let items = entry.value.as_array().ok_or_else(|| TomlError {
                line: entry.line,
                message: "key `scenes`: expected array".to_string(),
            })?;
            if items.is_empty() {
                return fail(entry.line, "key `scenes` is empty");
            }
            let count = SceneId::all().count() as u64;
            items
                .iter()
                .map(|item| match item.as_u64() {
                    Some(n) if (1..=count).contains(&n) => Ok(n as u8),
                    _ => fail(
                        entry.line,
                        format!("key `scenes`: every element must be an integer in 1..={count}"),
                    ),
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    let max_instances = match table.get("max_instances") {
        None => None,
        Some(entry) => match &entry.value {
            TomlValue::Str(s) if s == "unlimited" => Some(None),
            TomlValue::Int(_) => Some(Some(count_of(entry)?)),
            other => {
                return fail(
                    entry.line,
                    format!(
                        "key `max_instances`: expected integer or \"unlimited\", got {}",
                        other.type_name()
                    ),
                )
            }
        },
    };
    Ok(RunSpec {
        cameras: count_of(require(table, "cameras")?)?,
        pool_frames: count_of(require(table, "pool_frames")?)?,
        scenes,
        bandwidth_mbps: positive_f64(require(table, "bandwidth_mbps")?)?,
        slo_s: positive_f64(require(table, "slo_s")?)?,
        seed: u64_of(require(table, "seed")?)?,
        max_instances,
    })
}

fn parse_arrival(table: &TomlTable) -> Result<ArrivalSpec, TomlError> {
    let kind = require(table, "kind")?;
    match str_of(kind)?.as_str() {
        "poisson" => {
            check_keys(table, &["kind", "fps"])?;
            Ok(ArrivalSpec::Poisson {
                fps: rate_fps(require(table, "fps")?)?,
            })
        }
        "bursty" => {
            check_keys(
                table,
                &[
                    "kind",
                    "calm_fps",
                    "burst_fps",
                    "mean_calm_s",
                    "mean_burst_s",
                ],
            )?;
            Ok(ArrivalSpec::Bursty {
                calm_fps: rate_fps(require(table, "calm_fps")?)?,
                burst_fps: rate_fps(require(table, "burst_fps")?)?,
                mean_calm_s: positive_f64(require(table, "mean_calm_s")?)?,
                mean_burst_s: positive_f64(require(table, "mean_burst_s")?)?,
            })
        }
        "diurnal" => {
            check_keys(table, &["kind", "min_fps", "max_fps", "period_s"])?;
            let min_entry = require(table, "min_fps")?;
            let min_fps = rate_fps(min_entry)?;
            let max_fps = rate_fps(require(table, "max_fps")?)?;
            if min_fps > max_fps {
                return fail(
                    min_entry.line,
                    format!("min_fps {min_fps} exceeds max_fps {max_fps}"),
                );
            }
            Ok(ArrivalSpec::Diurnal {
                min_fps,
                max_fps,
                period_s: positive_f64(require(table, "period_s")?)?,
            })
        }
        other => fail(
            kind.line,
            format!("unknown arrival kind `{other}` (poisson | bursty | diurnal)"),
        ),
    }
}

fn parse_scenario(
    table: &TomlTable,
    arrival: ArrivalSpec,
    faults: Vec<FaultSpec>,
) -> Result<ScenarioSpec, TomlError> {
    check_keys(
        table,
        &[
            "frames_per_camera",
            "join_stagger_s",
            "session_s",
            "tenant_slos_s",
        ],
    )?;
    let stagger_entry = require(table, "join_stagger_s")?;
    let join_stagger_s = f64_of(stagger_entry)?;
    if join_stagger_s < 0.0 {
        return fail(stagger_entry.line, "key `join_stagger_s` must be >= 0");
    }
    Ok(ScenarioSpec {
        arrival,
        frames_per_camera: count_of(require(table, "frames_per_camera")?)?,
        join_stagger_s,
        session_s: table.get("session_s").map(positive_f64).transpose()?,
        tenant_slos_s: table
            .get("tenant_slos_s")
            .map(positive_f64_list)
            .transpose()?
            .unwrap_or_default(),
        faults,
    })
}

fn parse_faults(tables: &[&TomlTable]) -> Result<Vec<FaultSpec>, TomlError> {
    let mut faults = Vec::with_capacity(tables.len());
    // (kind name, start, end, header line) of every accepted window, for
    // the same-kind overlap check.
    let mut windows: Vec<(&'static str, f64, f64, usize)> = Vec::new();
    for table in tables {
        let kind_entry = require(table, "kind")?;
        let kind = match str_of(kind_entry)?.as_str() {
            "link_outage" => {
                check_keys(table, &["kind", "at_s", "duration_s"])?;
                FaultKind::LinkOutage
            }
            "cold_start_storm" => {
                check_keys(table, &["kind", "at_s", "duration_s"])?;
                FaultKind::ColdStartStorm
            }
            "latency_tail" => {
                check_keys(table, &["kind", "factor", "at_s", "duration_s"])?;
                FaultKind::LatencyTail {
                    factor: slowdown_factor(require(table, "factor")?)?,
                }
            }
            "brownout" => {
                check_keys(table, &["kind", "factor", "at_s", "duration_s"])?;
                FaultKind::Brownout {
                    factor: slowdown_factor(require(table, "factor")?)?,
                }
            }
            "camera_flap" => {
                check_keys(
                    table,
                    &["kind", "mean_up_s", "mean_down_s", "at_s", "duration_s"],
                )?;
                FaultKind::CameraFlap {
                    mean_up_s: positive_f64(require(table, "mean_up_s")?)?,
                    mean_down_s: positive_f64(require(table, "mean_down_s")?)?,
                }
            }
            other => {
                return fail(
                    kind_entry.line,
                    format!(
                        "unknown fault kind `{other}` (link_outage | latency_tail | \
                         cold_start_storm | camera_flap | brownout)"
                    ),
                )
            }
        };
        let at_entry = require(table, "at_s")?;
        let at_s = f64_of(at_entry)?;
        if at_s < 0.0 {
            return fail(at_entry.line, "key `at_s` must be >= 0");
        }
        let duration_s = positive_f64(require(table, "duration_s")?)?;
        let (start, end) = (at_s, at_s + duration_s);
        let name = kind.name();
        if let Some((_, other_start, _, other_line)) = windows
            .iter()
            .find(|(k, s, e, _)| *k == name && start < *e && *s < end)
        {
            return fail(
                table.line,
                format!(
                    "{name} window [{start}s, {end}s) overlaps the {name} window \
                     starting at {other_start}s (line {other_line})"
                ),
            );
        }
        windows.push((name, start, end, table.line));
        faults.push(FaultSpec {
            kind,
            at_s,
            duration_s,
        });
    }
    Ok(faults)
}

/// Latency-tail and brownout factors scale execution up; a factor below
/// 1 would be a speedup, which is never a fault.
fn slowdown_factor(entry: &TomlEntry) -> Result<f64, TomlError> {
    let value = f64_of(entry)?;
    if value >= 1.0 {
        Ok(value)
    } else {
        fail(
            entry.line,
            format!("key `factor` must be >= 1 (a slowdown), got {value}"),
        )
    }
}

fn parse_admission(table: &TomlTable) -> Result<AdmissionSpec, TomlError> {
    let kind = require(table, "kind")?;
    match str_of(kind)?.as_str() {
        "always" => {
            check_keys(table, &["kind"])?;
            Ok(AdmissionSpec::Always)
        }
        "queue-depth" => {
            check_keys(table, &["kind", "max_queued"])?;
            Ok(AdmissionSpec::QueueDepth {
                max_queued: u64_of(require(table, "max_queued")?)? as usize,
            })
        }
        "slo-shedder" => {
            check_keys(table, &["kind", "per_item_s", "pressure"])?;
            let pressure_entry = require(table, "pressure")?;
            let pressure = positive_f64(pressure_entry)?;
            if pressure > 1.0 {
                return fail(
                    pressure_entry.line,
                    format!("key `pressure` must be in (0, 1], got {pressure}"),
                );
            }
            Ok(AdmissionSpec::SloShedder {
                per_item_s: positive_f64(require(table, "per_item_s")?)?,
                pressure,
            })
        }
        other => fail(
            kind.line,
            format!("unknown admission kind `{other}` (always | queue-depth | slo-shedder)"),
        ),
    }
}

fn parse_fairness(table: &TomlTable) -> Result<FairnessSpec, TomlError> {
    check_keys(
        table,
        &[
            "weights",
            "queue_capacity",
            "tick_s",
            "quantum",
            "admission_aware",
        ],
    )?;
    let weights_entry = require(table, "weights")?;
    let weights = positive_f64_list(weights_entry)?;
    if weights.is_empty() {
        return fail(weights_entry.line, "key `weights` is empty");
    }
    Ok(FairnessSpec {
        weights,
        queue_capacity: count_of(require(table, "queue_capacity")?)?,
        tick_s: positive_f64(require(table, "tick_s")?)?,
        quantum: positive_f64(require(table, "quantum")?)?,
        admission_aware: bool_of(require(table, "admission_aware")?)?,
    })
}

fn toml_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn float_list(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        "name = \"t\"\ndescription = \"d\"\n\n[run]\ncameras = 2\npool_frames = 4\n\
         bandwidth_mbps = 80.0\nslo_s = 1.0\nseed = 7\n\n[scenario]\nframes_per_camera = 6\n\
         join_stagger_s = 0.0\n\n[arrival]\nkind = \"poisson\"\nfps = 6.0\n"
            .to_string()
    }

    #[test]
    fn minimal_file_parses_with_defaults() {
        let file = ScenarioFile::parse_str(&minimal()).unwrap();
        assert_eq!(file.name, "t");
        let all: Vec<u8> = SceneId::all().map(|s| s.index()).collect();
        assert_eq!(file.run.scenes, all);
        assert_eq!(file.run.max_instances, None);
        assert!(file.scenario.faults.is_empty());
        assert!(file.scenario.tenant_slos_s.is_empty());
        assert!(file.admission.is_none());
        assert!(file.fairness.is_none());
    }

    #[test]
    fn canonical_writer_round_trips() {
        let text = format!(
            "{}\n[[fault]]\nkind = \"brownout\"\n\
             factor = 2.0\nat_s = 1.0\nduration_s = 2.0\n\n[[fault]]\nkind = \"camera_flap\"\n\
             mean_up_s = 2.0\nmean_down_s = 0.5\nat_s = 0.0\nduration_s = 8.0\n\n[admission]\n\
             kind = \"slo-shedder\"\nper_item_s = 0.02\npressure = 0.5\n\n[fairness]\n\
             weights = [3.0, 1.0]\nqueue_capacity = 16\ntick_s = 0.02\nquantum = 0.4\n\
             admission_aware = true\n",
            minimal().replace(
                "join_stagger_s = 0.0\n",
                "join_stagger_s = 0.0\nsession_s = 9.0\ntenant_slos_s = [0.8, 1.5]\n"
            )
        );
        let file = ScenarioFile::parse_str(&text).unwrap();
        let canonical = file.to_toml();
        let back = ScenarioFile::parse_str(&canonical).unwrap();
        assert_eq!(back, file);
        // The canonical form is a fixed point.
        assert_eq!(back.to_toml(), canonical);
    }

    #[test]
    fn unknown_keys_are_rejected_with_their_line() {
        let text = minimal().replace("fps = 6.0", "fps = 6.0\nfpss = 1.0");
        let e = ScenarioFile::parse_str(&text).unwrap_err();
        assert!(e.message.contains("unknown key `fpss` in [arrival]"), "{e}");
        // The named line is the line the bad key sits on.
        let expected_line = text.lines().position(|l| l.starts_with("fpss")).unwrap() + 1;
        assert_eq!(e.line, expected_line, "{e}");
    }

    #[test]
    fn out_of_range_rates_are_rejected() {
        for (bad, needle) in [
            ("fps = -3.0", "must be positive"),
            ("fps = 0.0", "must be positive"),
            ("fps = 961.0", "out of range"),
        ] {
            let text = minimal().replace("fps = 6.0", bad);
            let e = ScenarioFile::parse_str(&text).unwrap_err();
            assert!(e.message.contains(needle), "{bad}: {e}");
        }
    }

    #[test]
    fn overlapping_same_kind_fault_windows_are_rejected() {
        let faults = "\n[[fault]]\nkind = \"link_outage\"\nat_s = 1.0\nduration_s = 2.0\n\
                      \n[[fault]]\nkind = \"link_outage\"\nat_s = 2.5\nduration_s = 1.0\n";
        let text = format!("{}{faults}", minimal());
        let e = ScenarioFile::parse_str(&text).unwrap_err();
        assert!(e.message.contains("overlaps"), "{e}");
        assert!(e.message.contains("link_outage"), "{e}");
        // The error names the second window's header line.
        let second = text.lines().filter(|l| *l == "[[fault]]").count();
        assert_eq!(second, 2);

        // Different kinds may overlap freely; adjacent same-kind windows
        // (half-open) may touch.
        let ok = "\n[[fault]]\nkind = \"link_outage\"\nat_s = 1.0\nduration_s = 2.0\n\
                  \n[[fault]]\nkind = \"brownout\"\nfactor = 2.0\nat_s = 1.5\nduration_s = 2.0\n\
                  \n[[fault]]\nkind = \"link_outage\"\nat_s = 3.0\nduration_s = 1.0\n";
        assert!(ScenarioFile::parse_str(&format!("{}{ok}", minimal())).is_ok());
    }

    #[test]
    fn missing_tables_and_keys_are_rejected() {
        let e = ScenarioFile::parse_str("name = \"x\"\ndescription = \"d\"\n").unwrap_err();
        assert!(e.message.contains("missing required [run]"), "{e}");

        let text = minimal().replace("slo_s = 1.0\n", "");
        let e = ScenarioFile::parse_str(&text).unwrap_err();
        assert!(e.message.contains("missing required key `slo_s`"), "{e}");
    }

    #[test]
    fn speedup_factors_are_rejected() {
        let fault =
            "\n[[fault]]\nkind = \"brownout\"\nfactor = 0.5\nat_s = 0.0\nduration_s = 1.0\n";
        let e = ScenarioFile::parse_str(&format!("{}{fault}", minimal())).unwrap_err();
        assert!(e.message.contains("must be >= 1"), "{e}");
    }

    #[test]
    fn scenario_runs_deterministically_across_shards() {
        let fault =
            "\n[[fault]]\nkind = \"brownout\"\nfactor = 2.0\nat_s = 1.0\nduration_s = 3.0\n";
        let file = ScenarioFile::parse_str(&format!("{}{fault}", minimal())).unwrap();
        let (a, _) = file.run(false, 1);
        let (b, _) = file.run(false, 4);
        assert_eq!(a.summarize(), b.summarize());
        assert!(a.frames > 0);
    }
}
