//! Aligned text-table rendering for the experiment binaries.

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (cells are stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["scene", "value"]);
        t.row(["scene_01", "1.0"]);
        t.row(["s2", "22.5"]);
        let r = t.render();
        assert!(r.contains("scene_01  1.0"));
        assert!(r.lines().count() == 4);
    }
}
