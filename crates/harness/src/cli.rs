//! Options common to all experiment binaries.

use crate::report::BenchReport;
use std::path::PathBuf;

/// Options every experiment binary accepts.
#[derive(Debug, Clone, Default)]
pub struct ExpOpts {
    /// Experiment seed (`--seed N`).
    pub seed: u64,
    /// Frame-count override (`--frames N`).
    pub frames: Option<usize>,
    /// Quick mode (`--quick`): fewer frames/scenes for smoke runs.
    pub quick: bool,
    /// Worker-thread override (`--workers N`); default: all cores.
    pub workers: Option<usize>,
    /// Directory to write `BENCH_<name>.json` reports into (`--out DIR`);
    /// default: don't write.
    pub out: Option<PathBuf>,
    /// Engine shard-count override (`--shards N`) for streaming-scenario
    /// runs; default: single-shard (the byte-compare oracle).
    pub shards: Option<usize>,
}

impl ExpOpts {
    /// Parses `std::env::args`. Unknown flags are ignored so wrappers can
    /// pass extra context.
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses the given arguments (first element is the first flag, not
    /// the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut opts = Self {
            seed: 42,
            ..Self::default()
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                "--frames" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.frames = Some(v);
                        i += 1;
                    }
                }
                "--workers" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.workers = Some(v);
                        i += 1;
                    }
                }
                "--shards" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.shards = Some(v);
                        i += 1;
                    }
                }
                "--out" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.out = Some(PathBuf::from(v));
                        i += 1;
                    }
                }
                "--quick" => opts.quick = true,
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Frame budget: explicit `--frames`, else `quick_default` in quick
    /// mode, else `full_default`.
    #[must_use]
    pub fn frame_budget(&self, quick_default: usize, full_default: usize) -> usize {
        self.frames.unwrap_or(if self.quick {
            quick_default
        } else {
            full_default
        })
    }

    /// The resolved worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        crate::pool::resolve_workers(self.workers)
    }

    /// The resolved engine shard count (default 1).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.unwrap_or(1).max(1)
    }

    /// Writes the report into `--out` (if given), printing the path.
    pub fn maybe_write(&self, report: &BenchReport) {
        if let Some(dir) = &self.out {
            match report.write_to_dir(dir) {
                Ok(path) => println!("(wrote {})", path.display()),
                Err(err) => eprintln!("failed to write {}: {err}", report.file_name()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> ExpOpts {
        ExpOpts::parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn defaults() {
        let o = opts(&[]);
        assert_eq!(o.seed, 42);
        assert_eq!(o.frames, None);
        assert!(!o.quick);
        assert_eq!(o.workers, None);
        assert!(o.out.is_none());
        assert!(o.workers() >= 1);
    }

    #[test]
    fn parses_all_flags() {
        let o = opts(&[
            "--seed",
            "7",
            "--frames",
            "13",
            "--quick",
            "--workers",
            "3",
            "--out",
            "target/bench",
        ]);
        assert_eq!(o.seed, 7);
        assert_eq!(o.frames, Some(13));
        assert!(o.quick);
        assert_eq!(o.workers, Some(3));
        assert_eq!(o.out.as_deref(), Some(std::path::Path::new("target/bench")));
        assert_eq!(o.workers(), 3);
    }

    #[test]
    fn ignores_unknown_flags() {
        let o = opts(&["--smoke", "--seed", "9"]);
        assert_eq!(o.seed, 9);
    }

    #[test]
    fn parses_shards() {
        assert_eq!(opts(&[]).shards(), 1);
        let o = opts(&["--shards", "8"]);
        assert_eq!(o.shards, Some(8));
        assert_eq!(o.shards(), 8);
        // Zero clamps to the inline oracle.
        assert_eq!(opts(&["--shards", "0"]).shards(), 1);
    }

    #[test]
    fn frame_budget_precedence() {
        assert_eq!(opts(&["--frames", "5"]).frame_budget(10, 100), 5);
        assert_eq!(opts(&["--quick"]).frame_budget(10, 100), 10);
        assert_eq!(opts(&[]).frame_budget(10, 100), 100);
    }
}
