//! A minimal, deterministic JSON document model.
//!
//! The vendored `serde` is a compile-only marker stub (no data model, no
//! `serde_json`), so the harness carries its own value type plus writer
//! and parser. Two properties matter more here than generality:
//!
//! * **Determinism** — objects keep insertion order and floats print via
//!   Rust's shortest-round-trip formatting, so the same `BenchReport`
//!   always serialises to the same bytes (the parallel-equals-sequential
//!   acceptance check compares output byte-for-byte);
//! * **Round-tripping** — `parse(render(v)) == v`, which the CI gate
//!   relies on when it re-reads a checked-in baseline.
//!
//! Integers and floats are kept as distinct variants (`U64` vs `F64`) so
//! counters survive a round trip exactly even beyond 2^53.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, ids).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys are not merged.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, `\n`
    /// line endings, no trailing newline).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error, or any trailing non-whitespace input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that round-trips the
        // exact bit pattern; it always includes a '.' or an exponent, so
        // the parser can tell it apart from an integer.
        let _ = write!(out, "{v:?}");
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::F64(0.1),
            Json::F64(-1.5e-9),
            Json::Str("hi \"there\"\nline".to_string()),
        ] {
            let text = v.render();
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::object(vec![
            ("name", Json::Str("smoke".into())),
            ("version", Json::U64(1)),
            (
                "cells",
                Json::Array(vec![
                    Json::object(vec![("x", Json::F64(0.25)), ("n", Json::U64(3))]),
                    Json::object(vec![]),
                ]),
            ),
            ("empty", Json::Array(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Determinism: rendering the parse reproduces identical bytes.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn floats_keep_exact_bits() {
        let v = Json::F64(0.1 + 0.2);
        let Json::F64(back) = Json::parse(&v.render()).unwrap() else {
            panic!("expected float");
        };
        assert_eq!(back.to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn integers_beyond_2_53_survive() {
        let v = Json::U64((1 << 60) + 7);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let doc = Json::object(vec![("a", Json::U64(1)), ("b", Json::Str("x".into()))]);
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("'single'").is_err());
    }

    #[test]
    fn parses_standard_whitespace_and_negatives() {
        let doc = Json::parse("  { \"a\" : [ -1.5 , 2 ] }\n").unwrap();
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(-1.5));
        assert_eq!(arr[1].as_u64(), Some(2));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }
}
