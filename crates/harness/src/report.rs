//! Versioned, machine-readable bench reports.
//!
//! A [`BenchReport`] is what one [`crate::grid::SweepGrid`] run leaves
//! behind: a schema version, the grid that was swept (so the file is
//! self-describing), and one [`CellReport`] per cell carrying the
//! engine's [`RunSummary`] digest. Serialisation goes through the
//! deterministic JSON writer in [`crate::json`], so the same run always
//! produces the same bytes — which is what lets CI compare a candidate
//! `BENCH_smoke.json` against a checked-in baseline, and what the
//! parallel-equals-sequential test asserts byte-for-byte.
//!
//! Nothing wall-clock-dependent is recorded: `throughput_pps` is patches
//! per *simulated* second, so a scheduling regression moves it while the
//! host machine's speed cannot.

use crate::grid::{
    policy_from_name, AdmissionSpec, ArrivalSpec, FairnessSpec, ScenarioSpec, SweepGrid, TraceKind,
    WorkloadSpec,
};
use crate::json::Json;
use serde::{Deserialize, Serialize};
use tangram_core::faults::{FaultKind, FaultSpec};
use tangram_core::report::{RunSummary, TenantSummary};

/// Version stamped into every `BENCH_*.json`; bump on any field change.
/// v2 added drop accounting (`dropped_arrivals`, `tenants`) to the
/// per-cell metrics and the scenario/admission sweep axes to the grid.
/// v3 added per-class fair-ingress queue accounting (`peak_queued` on
/// every tenant row) and the weighted-DRR `fairness` sweep axis.
/// v4 added declarative fault injection (`faults` on every scenario,
/// emitted only when non-empty) and made weighted-DRR work-conserving,
/// which moves fairness-axis metrics.
pub const SCHEMA_VERSION: u64 = 4;

/// One cell's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Position in grid enumeration order.
    pub index: u64,
    /// Seed-axis value.
    pub seed: u64,
    /// SLO, seconds.
    pub slo_s: f64,
    /// Uplink bandwidth, Mbps.
    pub bandwidth_mbps: f64,
    /// Estimator slack multiplier.
    pub sigma_multiplier: f64,
    /// Index into the grid's workload axis.
    pub workload: u64,
    /// Index into the grid's scenario axis — recorded (and serialized)
    /// only when the grid sweeps more than one scenario, so
    /// single-scenario grids keep their legacy cell bytes.
    pub scenario: Option<u64>,
    /// Admission-policy name — recorded (and serialized) only when the
    /// grid sweeps an admission axis.
    pub admission: Option<String>,
    /// Fair-ingress name — recorded (and serialized) only when the grid
    /// sweeps a fairness axis.
    pub fairness: Option<String>,
    /// The engine's scalar digest (policy name included).
    pub metrics: RunSummary,
}

/// The full outcome of one grid run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Experiment name (`BENCH_<name>.json`).
    pub name: String,
    /// The grid that was swept.
    pub grid: SweepGrid,
    /// Per-cell outcomes, in grid enumeration order.
    pub cells: Vec<CellReport>,
}

impl BenchReport {
    /// The canonical file name for this report.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serialises to deterministic, pretty-printed JSON (with a trailing
    /// newline, as checked-in baselines want).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut text = self.to_value().render();
        text.push('\n');
        text
    }

    /// Parses a report back, validating the schema version.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a missing/unknown field, or a
    /// schema-version mismatch.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value = Json::parse(text)?;
        let version = value
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} unsupported (expected {SCHEMA_VERSION})"
            ));
        }
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing name")?
            .to_string();
        let grid = grid_from_value(value.get("grid").ok_or("missing grid")?)?;
        let cells = value
            .get("cells")
            .and_then(Json::as_array)
            .ok_or("missing cells")?
            .iter()
            .map(cell_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport { name, grid, cells })
    }

    /// The full document as a JSON value.
    #[must_use]
    pub fn to_value(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::U64(SCHEMA_VERSION)),
            ("name", Json::Str(self.name.clone())),
            ("grid", grid_to_value(&self.grid)),
            (
                "cells",
                Json::Array(self.cells.iter().map(cell_to_value).collect()),
            ),
        ])
    }

    /// Writes `BENCH_<name>.json` under `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn grid_to_value(grid: &SweepGrid) -> Json {
    let mut fields = vec![
        (
            "policies",
            Json::Array(
                grid.policies
                    .iter()
                    .map(|p| Json::Str(p.name().to_string()))
                    .collect(),
            ),
        ),
        (
            "seeds",
            Json::Array(grid.seeds.iter().map(|&s| Json::U64(s)).collect()),
        ),
        (
            "slos_s",
            Json::Array(grid.slos_s.iter().map(|&v| Json::F64(v)).collect()),
        ),
        (
            "bandwidths_mbps",
            Json::Array(grid.bandwidths_mbps.iter().map(|&v| Json::F64(v)).collect()),
        ),
        (
            "sigma_multipliers",
            Json::Array(
                grid.sigma_multipliers
                    .iter()
                    .map(|&v| Json::F64(v))
                    .collect(),
            ),
        ),
        (
            "workloads",
            Json::Array(grid.workloads.iter().map(workload_to_value).collect()),
        ),
        (
            "mark_timeouts_s",
            Json::Array(
                grid.mark_timeouts_s
                    .iter()
                    .map(|&(bw, t)| Json::Array(vec![Json::F64(bw), Json::F64(t)]))
                    .collect(),
            ),
        ),
        ("max_fps", grid.max_fps.map_or(Json::Null, Json::F64)),
        (
            "max_instances",
            match grid.max_instances {
                None => Json::Null,
                Some(None) => Json::Str("unlimited".to_string()),
                Some(Some(n)) => Json::U64(n as u64),
            },
        ),
    ];
    // Emitted only when configured, so pre-streaming baselines (and their
    // byte-exact CI comparison) are untouched by the axes. A single
    // scenario keeps the legacy `"scenario"` object form byte-for-byte;
    // only a real multi-scenario sweep emits the `"scenarios"` array.
    match grid.scenarios.as_slice() {
        [] => {}
        [only] => fields.push(("scenario", scenario_to_value(only))),
        many => fields.push((
            "scenarios",
            Json::Array(many.iter().map(scenario_to_value).collect()),
        )),
    }
    if !grid.admission.is_empty() {
        fields.push((
            "admission",
            Json::Array(grid.admission.iter().map(admission_to_value).collect()),
        ));
    }
    if !grid.fairness.is_empty() {
        fields.push((
            "fairness",
            Json::Array(grid.fairness.iter().map(fairness_to_value).collect()),
        ));
    }
    Json::object(fields)
}

fn fairness_to_value(spec: &FairnessSpec) -> Json {
    Json::object(vec![
        ("kind", Json::Str(spec.kind().to_string())),
        (
            "weights",
            Json::Array(spec.weights.iter().map(|&w| Json::F64(w)).collect()),
        ),
        ("queue_capacity", Json::U64(spec.queue_capacity as u64)),
        ("tick_s", Json::F64(spec.tick_s)),
        ("quantum", Json::F64(spec.quantum)),
        ("admission_aware", Json::Bool(spec.admission_aware)),
    ])
}

fn fairness_from_value(value: &Json) -> Result<FairnessSpec, String> {
    match value.get("kind").and_then(Json::as_str) {
        Some("drr") => {}
        other => return Err(format!("unknown fairness.kind {other:?}")),
    }
    let f = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing fairness.{key}"))
    };
    Ok(FairnessSpec {
        weights: value
            .get("weights")
            .and_then(Json::as_array)
            .ok_or("missing fairness.weights")?
            .iter()
            .map(|v| v.as_f64().ok_or("bad fairness.weights"))
            .collect::<Result<Vec<_>, _>>()?,
        queue_capacity: value
            .get("queue_capacity")
            .and_then(Json::as_u64)
            .ok_or("missing fairness.queue_capacity")? as usize,
        tick_s: f("tick_s")?,
        quantum: f("quantum")?,
        admission_aware: value
            .get("admission_aware")
            .and_then(Json::as_bool)
            .ok_or("missing fairness.admission_aware")?,
    })
}

fn admission_to_value(spec: &AdmissionSpec) -> Json {
    let mut fields = vec![("kind", Json::Str(spec.kind().to_string()))];
    match *spec {
        AdmissionSpec::Always => {}
        AdmissionSpec::QueueDepth { max_queued } => {
            fields.push(("max_queued", Json::U64(max_queued as u64)));
        }
        AdmissionSpec::SloShedder {
            per_item_s,
            pressure,
        } => {
            fields.push(("per_item_s", Json::F64(per_item_s)));
            fields.push(("pressure", Json::F64(pressure)));
        }
    }
    Json::object(fields)
}

fn admission_from_value(value: &Json) -> Result<AdmissionSpec, String> {
    let f = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing admission.{key}"))
    };
    match value.get("kind").and_then(Json::as_str) {
        Some("always") => Ok(AdmissionSpec::Always),
        Some("queue-depth") => Ok(AdmissionSpec::QueueDepth {
            max_queued: value
                .get("max_queued")
                .and_then(Json::as_u64)
                .ok_or("missing admission.max_queued")? as usize,
        }),
        Some("slo-shedder") => Ok(AdmissionSpec::SloShedder {
            per_item_s: f("per_item_s")?,
            pressure: f("pressure")?,
        }),
        other => Err(format!("unknown admission.kind {other:?}")),
    }
}

fn arrival_to_value(spec: &ArrivalSpec) -> Json {
    let mut fields = vec![("kind", Json::Str(spec.kind().to_string()))];
    match *spec {
        ArrivalSpec::Poisson { fps } => fields.push(("fps", Json::F64(fps))),
        ArrivalSpec::Bursty {
            calm_fps,
            burst_fps,
            mean_calm_s,
            mean_burst_s,
        } => {
            fields.push(("calm_fps", Json::F64(calm_fps)));
            fields.push(("burst_fps", Json::F64(burst_fps)));
            fields.push(("mean_calm_s", Json::F64(mean_calm_s)));
            fields.push(("mean_burst_s", Json::F64(mean_burst_s)));
        }
        ArrivalSpec::Diurnal {
            min_fps,
            max_fps,
            period_s,
        } => {
            fields.push(("min_fps", Json::F64(min_fps)));
            fields.push(("max_fps", Json::F64(max_fps)));
            fields.push(("period_s", Json::F64(period_s)));
        }
    }
    Json::object(fields)
}

fn arrival_from_value(value: &Json) -> Result<ArrivalSpec, String> {
    let f = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing scenario.arrival.{key}"))
    };
    match value.get("kind").and_then(Json::as_str) {
        Some("poisson") => Ok(ArrivalSpec::Poisson { fps: f("fps")? }),
        Some("bursty") => Ok(ArrivalSpec::Bursty {
            calm_fps: f("calm_fps")?,
            burst_fps: f("burst_fps")?,
            mean_calm_s: f("mean_calm_s")?,
            mean_burst_s: f("mean_burst_s")?,
        }),
        Some("diurnal") => Ok(ArrivalSpec::Diurnal {
            min_fps: f("min_fps")?,
            max_fps: f("max_fps")?,
            period_s: f("period_s")?,
        }),
        other => Err(format!("unknown scenario.arrival.kind {other:?}")),
    }
}

fn fault_to_value(spec: &FaultSpec) -> Json {
    let mut fields = vec![("kind", Json::Str(spec.kind.name().to_string()))];
    match spec.kind {
        FaultKind::LinkOutage | FaultKind::ColdStartStorm => {}
        FaultKind::LatencyTail { factor } | FaultKind::Brownout { factor } => {
            fields.push(("factor", Json::F64(factor)));
        }
        FaultKind::CameraFlap {
            mean_up_s,
            mean_down_s,
        } => {
            fields.push(("mean_up_s", Json::F64(mean_up_s)));
            fields.push(("mean_down_s", Json::F64(mean_down_s)));
        }
    }
    fields.push(("at_s", Json::F64(spec.at_s)));
    fields.push(("duration_s", Json::F64(spec.duration_s)));
    Json::object(fields)
}

fn fault_from_value(value: &Json) -> Result<FaultSpec, String> {
    let f = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing fault.{key}"))
    };
    let kind = match value.get("kind").and_then(Json::as_str) {
        Some("link_outage") => FaultKind::LinkOutage,
        Some("latency_tail") => FaultKind::LatencyTail {
            factor: f("factor")?,
        },
        Some("cold_start_storm") => FaultKind::ColdStartStorm,
        Some("camera_flap") => FaultKind::CameraFlap {
            mean_up_s: f("mean_up_s")?,
            mean_down_s: f("mean_down_s")?,
        },
        Some("brownout") => FaultKind::Brownout {
            factor: f("factor")?,
        },
        other => return Err(format!("unknown fault.kind {other:?}")),
    };
    Ok(FaultSpec {
        kind,
        at_s: f("at_s")?,
        duration_s: f("duration_s")?,
    })
}

fn scenario_to_value(spec: &ScenarioSpec) -> Json {
    let mut fields = vec![
        ("arrival", arrival_to_value(&spec.arrival)),
        (
            "frames_per_camera",
            Json::U64(spec.frames_per_camera as u64),
        ),
        ("join_stagger_s", Json::F64(spec.join_stagger_s)),
        ("session_s", spec.session_s.map_or(Json::Null, Json::F64)),
        (
            "tenant_slos_s",
            Json::Array(spec.tenant_slos_s.iter().map(|&v| Json::F64(v)).collect()),
        ),
    ];
    // Emitted only when configured, so fault-free scenarios keep their
    // legacy bytes.
    if !spec.faults.is_empty() {
        fields.push((
            "faults",
            Json::Array(spec.faults.iter().map(fault_to_value).collect()),
        ));
    }
    Json::object(fields)
}

fn scenario_from_value(value: &Json) -> Result<ScenarioSpec, String> {
    let arrival = arrival_from_value(value.get("arrival").ok_or("missing scenario.arrival")?)?;
    let frames_per_camera = value
        .get("frames_per_camera")
        .and_then(Json::as_u64)
        .ok_or("missing scenario.frames_per_camera")? as usize;
    let join_stagger_s = value
        .get("join_stagger_s")
        .and_then(Json::as_f64)
        .ok_or("missing scenario.join_stagger_s")?;
    let session_s = match value.get("session_s") {
        Some(Json::Null) | None => None,
        Some(v) => Some(v.as_f64().ok_or("bad scenario.session_s")?),
    };
    let tenant_slos_s = value
        .get("tenant_slos_s")
        .and_then(Json::as_array)
        .ok_or("missing scenario.tenant_slos_s")?
        .iter()
        .map(|v| v.as_f64().ok_or("bad scenario.tenant_slos_s"))
        .collect::<Result<Vec<_>, _>>()?;
    let faults = match value.get("faults") {
        Some(Json::Null) | None => Vec::new(),
        Some(v) => v
            .as_array()
            .ok_or("bad scenario.faults")?
            .iter()
            .map(fault_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(ScenarioSpec {
        arrival,
        frames_per_camera,
        join_stagger_s,
        session_s,
        tenant_slos_s,
        faults,
    })
}

fn grid_from_value(value: &Json) -> Result<SweepGrid, String> {
    let str_list = |key: &str| -> Result<Vec<String>, String> {
        Ok(value
            .get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("missing grid.{key}"))?
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect())
    };
    let f64_list = |key: &str| -> Result<Vec<f64>, String> {
        value
            .get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("missing grid.{key}"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| format!("bad grid.{key}")))
            .collect()
    };
    let policies = str_list("policies")?
        .iter()
        .map(|name| policy_from_name(name).ok_or_else(|| format!("unknown policy '{name}'")))
        .collect::<Result<Vec<_>, _>>()?;
    let seeds = value
        .get("seeds")
        .and_then(Json::as_array)
        .ok_or("missing grid.seeds")?
        .iter()
        .map(|v| v.as_u64().ok_or("bad grid.seeds"))
        .collect::<Result<Vec<_>, _>>()?;
    let workloads = value
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or("missing grid.workloads")?
        .iter()
        .map(workload_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let mark_timeouts_s = value
        .get("mark_timeouts_s")
        .and_then(Json::as_array)
        .ok_or("missing grid.mark_timeouts_s")?
        .iter()
        .map(|pair| {
            let items = pair.as_array().ok_or("bad mark_timeouts_s entry")?;
            match items {
                [bw, t] => Ok((
                    bw.as_f64().ok_or("bad mark_timeouts_s bandwidth")?,
                    t.as_f64().ok_or("bad mark_timeouts_s timeout")?,
                )),
                _ => Err("bad mark_timeouts_s entry".to_string()),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let max_fps = match value.get("max_fps") {
        Some(Json::Null) | None => None,
        Some(v) => Some(v.as_f64().ok_or("bad grid.max_fps")?),
    };
    let max_instances = match value.get("max_instances") {
        Some(Json::Null) | None => None,
        Some(Json::Str(s)) if s == "unlimited" => Some(None),
        Some(v) => Some(Some(v.as_u64().ok_or("bad grid.max_instances")? as usize)),
    };
    let scenarios = match (value.get("scenario"), value.get("scenarios")) {
        (Some(Json::Null) | None, None) => Vec::new(),
        (Some(v), None) => vec![scenario_from_value(v)?],
        (None, Some(v)) => v
            .as_array()
            .ok_or("bad grid.scenarios")?
            .iter()
            .map(scenario_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        (Some(_), Some(_)) => return Err("grid has both scenario and scenarios".to_string()),
    };
    let admission = match value.get("admission") {
        Some(Json::Null) | None => Vec::new(),
        Some(v) => v
            .as_array()
            .ok_or("bad grid.admission")?
            .iter()
            .map(admission_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let fairness = match value.get("fairness") {
        Some(Json::Null) | None => Vec::new(),
        Some(v) => v
            .as_array()
            .ok_or("bad grid.fairness")?
            .iter()
            .map(fairness_from_value)
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(SweepGrid {
        name: String::new(), // carried by the report, not the echo
        policies,
        seeds,
        slos_s: f64_list("slos_s")?,
        bandwidths_mbps: f64_list("bandwidths_mbps")?,
        sigma_multipliers: f64_list("sigma_multipliers")?,
        workloads,
        mark_timeouts_s,
        max_fps,
        max_instances,
        scenarios,
        admission,
        fairness,
        // Execution-only fields, never serialized into BENCH json.
        capture_traces: false,
        shards: 1,
        credit_window: None,
    })
}

fn workload_to_value(spec: &WorkloadSpec) -> Json {
    Json::object(vec![
        (
            "scenes",
            Json::Array(
                spec.scenes
                    .iter()
                    .map(|&s| Json::U64(u64::from(s)))
                    .collect(),
            ),
        ),
        ("frames", Json::U64(spec.frames as u64)),
        ("trace", Json::Str(spec.trace.name().to_string())),
    ])
}

fn workload_from_value(value: &Json) -> Result<WorkloadSpec, String> {
    let scenes = value
        .get("scenes")
        .and_then(Json::as_array)
        .ok_or("missing workload.scenes")?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u8::try_from(n).ok())
                .ok_or("bad workload scene index")
        })
        .collect::<Result<Vec<_>, _>>()?;
    let frames = value
        .get("frames")
        .and_then(Json::as_u64)
        .ok_or("missing workload.frames")? as usize;
    let trace = value
        .get("trace")
        .and_then(Json::as_str)
        .and_then(TraceKind::from_name)
        .ok_or("bad workload.trace")?;
    Ok(WorkloadSpec {
        scenes,
        frames,
        trace,
    })
}

fn tenant_to_value(t: &TenantSummary) -> Json {
    Json::object(vec![
        ("slo_s", Json::F64(t.slo_s)),
        ("patches", Json::U64(t.patches)),
        ("violations", Json::U64(t.violations)),
        ("dropped", Json::U64(t.dropped)),
        ("admitted", Json::U64(t.admitted)),
        ("peak_queued", Json::U64(t.peak_queued)),
    ])
}

fn tenant_from_value(value: &Json) -> Result<TenantSummary, String> {
    let u = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing tenant.{key}"))
    };
    Ok(TenantSummary {
        slo_s: value
            .get("slo_s")
            .and_then(Json::as_f64)
            .ok_or("missing tenant.slo_s")?,
        patches: u("patches")?,
        violations: u("violations")?,
        dropped: u("dropped")?,
        admitted: u("admitted")?,
        peak_queued: u("peak_queued")?,
    })
}

fn cell_to_value(cell: &CellReport) -> Json {
    let m = &cell.metrics;
    let mut fields = vec![
        ("index", Json::U64(cell.index)),
        ("policy", Json::Str(m.policy.clone())),
        ("seed", Json::U64(cell.seed)),
        ("slo_s", Json::F64(cell.slo_s)),
        ("bandwidth_mbps", Json::F64(cell.bandwidth_mbps)),
        ("sigma_multiplier", Json::F64(cell.sigma_multiplier)),
        ("workload", Json::U64(cell.workload)),
    ];
    if let Some(scenario) = cell.scenario {
        fields.push(("scenario", Json::U64(scenario)));
    }
    if let Some(admission) = &cell.admission {
        fields.push(("admission", Json::Str(admission.clone())));
    }
    if let Some(fairness) = &cell.fairness {
        fields.push(("fairness", Json::Str(fairness.clone())));
    }
    fields.extend([(
        "metrics",
        Json::object(vec![
            ("frames", Json::U64(m.frames)),
            ("patches", Json::U64(m.patches)),
            ("batches", Json::U64(m.batches)),
            ("violations", Json::U64(m.violations)),
            ("dropped_arrivals", Json::U64(m.dropped_arrivals)),
            (
                "tenants",
                Json::Array(m.tenants.iter().map(tenant_to_value).collect()),
            ),
            ("slo_attainment", Json::F64(m.slo_attainment)),
            ("mean_latency_s", Json::F64(m.mean_latency_s)),
            ("p50_latency_s", Json::F64(m.p50_latency_s)),
            ("p99_latency_s", Json::F64(m.p99_latency_s)),
            ("cost_usd", Json::F64(m.cost_usd)),
            ("uplink_bytes", Json::U64(m.uplink_bytes)),
            ("invocations", Json::U64(m.invocations)),
            ("cold_starts", Json::U64(m.cold_starts)),
            (
                "mean_canvas_efficiency",
                Json::F64(m.mean_canvas_efficiency),
            ),
            (
                "mean_patches_per_batch",
                Json::F64(m.mean_patches_per_batch),
            ),
            ("execution_total_s", Json::F64(m.execution_total_s)),
            ("transmission_total_s", Json::F64(m.transmission_total_s)),
            ("makespan_s", Json::F64(m.makespan_s)),
            ("throughput_pps", Json::F64(m.throughput_pps)),
        ]),
    )]);
    Json::object(fields)
}

fn cell_from_value(value: &Json) -> Result<CellReport, String> {
    let metrics = value.get("metrics").ok_or("missing cell.metrics")?;
    let mu = |key: &str| -> Result<u64, String> {
        metrics
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing metrics.{key}"))
    };
    let mf = |key: &str| -> Result<f64, String> {
        metrics
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing metrics.{key}"))
    };
    let cu = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing cell.{key}"))
    };
    let cf = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing cell.{key}"))
    };
    let tenants = match metrics.get("tenants") {
        Some(v) => v
            .as_array()
            .ok_or("bad metrics.tenants")?
            .iter()
            .map(tenant_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        None => return Err("missing metrics.tenants".to_string()),
    };
    let scenario = match value.get("scenario") {
        Some(v) => Some(v.as_u64().ok_or("bad cell.scenario")?),
        None => None,
    };
    let admission = match value.get("admission") {
        Some(v) => Some(v.as_str().ok_or("bad cell.admission")?.to_string()),
        None => None,
    };
    let fairness = match value.get("fairness") {
        Some(v) => Some(v.as_str().ok_or("bad cell.fairness")?.to_string()),
        None => None,
    };
    Ok(CellReport {
        index: cu("index")?,
        seed: cu("seed")?,
        slo_s: cf("slo_s")?,
        bandwidth_mbps: cf("bandwidth_mbps")?,
        sigma_multiplier: cf("sigma_multiplier")?,
        workload: cu("workload")?,
        scenario,
        admission,
        fairness,
        metrics: RunSummary {
            policy: value
                .get("policy")
                .and_then(Json::as_str)
                .ok_or("missing cell.policy")?
                .to_string(),
            frames: mu("frames")?,
            patches: mu("patches")?,
            batches: mu("batches")?,
            violations: mu("violations")?,
            dropped_arrivals: mu("dropped_arrivals")?,
            tenants,
            slo_attainment: mf("slo_attainment")?,
            mean_latency_s: mf("mean_latency_s")?,
            p50_latency_s: mf("p50_latency_s")?,
            p99_latency_s: mf("p99_latency_s")?,
            cost_usd: mf("cost_usd")?,
            uplink_bytes: mu("uplink_bytes")?,
            invocations: mu("invocations")?,
            cold_starts: mu("cold_starts")?,
            mean_canvas_efficiency: mf("mean_canvas_efficiency")?,
            mean_patches_per_batch: mf("mean_patches_per_batch")?,
            execution_total_s: mf("execution_total_s")?,
            transmission_total_s: mf("transmission_total_s")?,
            makespan_s: mf("makespan_s")?,
            throughput_pps: mf("throughput_pps")?,
        },
    })
}

/// Tolerances of the CI perf gate.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated relative drop in per-cell `throughput_pps`
    /// (and rise in `p99_latency_s`) before the gate fails.
    pub max_perf_regression: f64,
    /// Relative tolerance on correctness metrics (patches, violations,
    /// cost, bytes, SLO attainment); anything beyond it is drift.
    pub correctness_tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            max_perf_regression: 0.20,
            correctness_tolerance: 1e-9,
        }
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Compares a candidate report against a checked-in baseline, returning
/// one message per violation (empty = gate passes).
///
/// Correctness metrics must match the baseline (the simulator is
/// deterministic, so any drift is a real behavioural change — refresh the
/// baseline deliberately if it is intended). Perf metrics get
/// [`GateConfig::max_perf_regression`] headroom, and only regressions
/// fail: faster is always fine.
#[must_use]
pub fn gate(baseline: &BenchReport, candidate: &BenchReport, config: &GateConfig) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.cells.len() != candidate.cells.len() {
        violations.push(format!(
            "cell count changed: baseline {} vs candidate {} (grid shape drift)",
            baseline.cells.len(),
            candidate.cells.len()
        ));
        return violations;
    }
    for (base, cand) in baseline.cells.iter().zip(&candidate.cells) {
        let label = format!(
            "cell {} ({} @ {:.0} Mbps, SLO {:.1}s, workload {})",
            base.index, base.metrics.policy, base.bandwidth_mbps, base.slo_s, base.workload
        );
        if base.metrics.policy != cand.metrics.policy {
            violations.push(format!(
                "{label}: policy changed to {}",
                cand.metrics.policy
            ));
            continue;
        }
        let correctness: [(&str, f64, f64); 7] = [
            (
                "patches",
                base.metrics.patches as f64,
                cand.metrics.patches as f64,
            ),
            (
                "batches",
                base.metrics.batches as f64,
                cand.metrics.batches as f64,
            ),
            (
                "violations",
                base.metrics.violations as f64,
                cand.metrics.violations as f64,
            ),
            (
                // A policy that sheds more (or less) traffic than the
                // baseline is a behavioural change, never a perf win.
                "dropped_arrivals",
                base.metrics.dropped_arrivals as f64,
                cand.metrics.dropped_arrivals as f64,
            ),
            (
                "slo_attainment",
                base.metrics.slo_attainment,
                cand.metrics.slo_attainment,
            ),
            ("cost_usd", base.metrics.cost_usd, cand.metrics.cost_usd),
            (
                "uplink_bytes",
                base.metrics.uplink_bytes as f64,
                cand.metrics.uplink_bytes as f64,
            ),
        ];
        for (name, b, c) in correctness {
            if rel_diff(b, c) > config.correctness_tolerance {
                violations.push(format!("{label}: {name} drifted {b} -> {c}"));
            }
        }
        // Per-tenant accounting must match exactly too: total drops can
        // stay flat while classes trade places.
        if base.metrics.tenants.len() != cand.metrics.tenants.len() {
            violations.push(format!(
                "{label}: tenant class count drifted {} -> {}",
                base.metrics.tenants.len(),
                cand.metrics.tenants.len()
            ));
        } else {
            for (bt, ct) in base.metrics.tenants.iter().zip(&cand.metrics.tenants) {
                if rel_diff(bt.slo_s, ct.slo_s) > config.correctness_tolerance {
                    violations.push(format!(
                        "{label}: tenant class slo drifted {} -> {}",
                        bt.slo_s, ct.slo_s
                    ));
                    continue;
                }
                for (name, b, c) in [
                    ("patches", bt.patches, ct.patches),
                    ("violations", bt.violations, ct.violations),
                    ("dropped", bt.dropped, ct.dropped),
                    ("admitted", bt.admitted, ct.admitted),
                    ("peak_queued", bt.peak_queued, ct.peak_queued),
                ] {
                    if b != c {
                        violations.push(format!(
                            "{label}: tenant slo={} {name} drifted {b} -> {c}",
                            bt.slo_s
                        ));
                    }
                }
            }
        }
        let b_tp = base.metrics.throughput_pps;
        let c_tp = cand.metrics.throughput_pps;
        if b_tp > 0.0 && c_tp < b_tp * (1.0 - config.max_perf_regression) {
            violations.push(format!(
                "{label}: throughput_pps regressed {:.1}% ({b_tp:.2} -> {c_tp:.2})",
                (1.0 - c_tp / b_tp) * 100.0
            ));
        }
        let b_p99 = base.metrics.p99_latency_s;
        let c_p99 = cand.metrics.p99_latency_s;
        if b_p99 > 0.0 && c_p99 > b_p99 * (1.0 + config.max_perf_regression) {
            violations.push(format!(
                "{label}: p99_latency_s regressed {:.1}% ({b_p99:.4} -> {c_p99:.4})",
                (c_p99 / b_p99 - 1.0) * 100.0
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TraceKind;
    use tangram_core::engine::PolicyKind;
    use tangram_types::ids::SceneId;

    fn sample_summary(policy: &str) -> RunSummary {
        RunSummary {
            policy: policy.to_string(),
            frames: 12,
            patches: 100,
            batches: 10,
            violations: 2,
            dropped_arrivals: 3,
            tenants: vec![TenantSummary {
                slo_s: 1.0,
                patches: 100,
                violations: 2,
                dropped: 3,
                admitted: 0,
                peak_queued: 0,
            }],
            slo_attainment: 0.98,
            mean_latency_s: 0.4,
            p50_latency_s: 0.35,
            p99_latency_s: 0.9,
            cost_usd: 0.0123,
            uplink_bytes: 1 << 33,
            invocations: 10,
            cold_starts: 1,
            mean_canvas_efficiency: 0.71,
            mean_patches_per_batch: 10.0,
            execution_total_s: 1.5,
            transmission_total_s: 3.25,
            makespan_s: 14.5,
            throughput_pps: 100.0 / 14.5,
        }
    }

    fn sample_report() -> BenchReport {
        let mut grid = SweepGrid::named("smoke");
        grid.policies = vec![PolicyKind::Tangram, PolicyKind::Elf];
        grid.seeds = vec![42];
        grid.slos_s = vec![1.0];
        grid.bandwidths_mbps = vec![20.0, 40.0];
        grid.workloads = vec![WorkloadSpec::single(SceneId::new(1), 12, TraceKind::Proxy)];
        grid.mark_timeouts_s = vec![(20.0, 0.55)];
        grid.max_instances = Some(Some(4));
        BenchReport {
            name: "smoke".to_string(),
            grid,
            cells: vec![CellReport {
                index: 0,
                seed: 42,
                slo_s: 1.0,
                bandwidth_mbps: 20.0,
                sigma_multiplier: 3.0,
                workload: 0,
                scenario: None,
                admission: None,
                fairness: None,
                metrics: sample_summary("Tangram"),
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless_and_stable() {
        let report = sample_report();
        let text = report.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        // The grid echo drops its redundant name; everything else must
        // survive exactly.
        assert_eq!(back.cells, report.cells);
        assert_eq!(back.grid.policies, report.grid.policies);
        assert_eq!(back.grid.workloads, report.grid.workloads);
        assert_eq!(back.grid.mark_timeouts_s, report.grid.mark_timeouts_s);
        assert_eq!(back.grid.max_instances, report.grid.max_instances);
        assert_eq!(back.to_json(), text, "render(parse(x)) == x");
    }

    #[test]
    fn scenario_free_reports_emit_no_scenario_key() {
        // Pre-streaming baselines must stay byte-identical: the scenario
        // and admission fields only appear when configured.
        let text = sample_report().to_json();
        assert!(!text.contains("scenario"));
        assert!(!text.contains("admission"));
        assert!(!text.contains("fairness"));
    }

    #[test]
    fn fairness_grids_round_trip() {
        let mut report = sample_report();
        report.grid.fairness = vec![FairnessSpec {
            weights: vec![3.0, 1.0],
            queue_capacity: 16,
            tick_s: 0.02,
            quantum: 1.5,
            admission_aware: true,
        }];
        report.cells[0].fairness = Some("drr".to_string());
        report.cells[0].metrics.tenants[0].peak_queued = 16;
        let text = report.to_json();
        assert!(text.contains("\"fairness\""));
        assert!(text.contains("\"admission_aware\": true"));
        assert!(text.contains("\"peak_queued\": 16"));
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.grid.fairness, report.grid.fairness);
        assert_eq!(back.cells, report.cells);
        assert_eq!(back.to_json(), text, "render(parse(x)) == x");
    }

    #[test]
    fn gate_catches_queue_peak_drift() {
        let baseline = sample_report();
        let mut candidate = baseline.clone();
        candidate.cells[0].metrics.tenants[0].peak_queued = 7;
        let violations = gate(&baseline, &candidate, &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("peak_queued")),
            "{violations:?}"
        );
    }

    #[test]
    fn scenario_grids_round_trip() {
        for arrival in [
            ArrivalSpec::Poisson { fps: 6.0 },
            ArrivalSpec::Bursty {
                calm_fps: 2.0,
                burst_fps: 18.0,
                mean_calm_s: 3.0,
                mean_burst_s: 0.5,
            },
            ArrivalSpec::Diurnal {
                min_fps: 1.0,
                max_fps: 10.0,
                period_s: 60.0,
            },
        ] {
            let mut report = sample_report();
            report.grid.scenarios = vec![ScenarioSpec {
                arrival,
                frames_per_camera: 40,
                join_stagger_s: 2.0,
                session_s: if matches!(arrival, ArrivalSpec::Poisson { .. }) {
                    Some(12.0)
                } else {
                    None
                },
                tenant_slos_s: vec![0.8, 1.5],
                faults: Vec::new(),
            }];
            let text = report.to_json();
            // One scenario keeps the legacy singular form.
            assert!(text.contains("\"scenario\""));
            assert!(!text.contains("\"scenarios\""));
            let back = BenchReport::from_json(&text).unwrap();
            assert_eq!(back.grid.scenarios, report.grid.scenarios);
            assert_eq!(back.to_json(), text, "render(parse(x)) == x");
        }
    }

    #[test]
    fn faulted_scenarios_round_trip_and_fault_free_ones_omit_the_key() {
        let mut report = sample_report();
        report.grid.scenarios = vec![ScenarioSpec {
            arrival: ArrivalSpec::Poisson { fps: 6.0 },
            frames_per_camera: 40,
            join_stagger_s: 0.0,
            session_s: None,
            tenant_slos_s: vec![0.8, 1.5],
            faults: vec![
                FaultSpec {
                    kind: FaultKind::LinkOutage,
                    at_s: 2.0,
                    duration_s: 1.5,
                },
                FaultSpec {
                    kind: FaultKind::LatencyTail { factor: 3.0 },
                    at_s: 1.0,
                    duration_s: 4.0,
                },
                FaultSpec {
                    kind: FaultKind::ColdStartStorm,
                    at_s: 0.5,
                    duration_s: 2.0,
                },
                FaultSpec {
                    kind: FaultKind::CameraFlap {
                        mean_up_s: 3.0,
                        mean_down_s: 0.5,
                    },
                    at_s: 0.0,
                    duration_s: 10.0,
                },
                FaultSpec {
                    kind: FaultKind::Brownout { factor: 2.0 },
                    at_s: 4.0,
                    duration_s: 3.0,
                },
            ],
        }];
        let text = report.to_json();
        assert!(text.contains("\"faults\""));
        assert!(text.contains("\"link_outage\""));
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.grid.scenarios, report.grid.scenarios);
        assert_eq!(back.to_json(), text, "render(parse(x)) == x");

        // Fault-free scenarios keep their legacy bytes.
        report.grid.scenarios[0].faults.clear();
        assert!(!report.to_json().contains("\"faults\""));
    }

    #[test]
    fn multi_scenario_and_admission_grids_round_trip() {
        let scenario = |fps: f64| ScenarioSpec {
            arrival: ArrivalSpec::Poisson { fps },
            frames_per_camera: 30,
            join_stagger_s: 0.0,
            session_s: None,
            tenant_slos_s: vec![0.8, 1.5],
            faults: Vec::new(),
        };
        let mut report = sample_report();
        report.grid.scenarios = vec![scenario(4.0), scenario(16.0)];
        report.grid.admission = vec![
            AdmissionSpec::Always,
            AdmissionSpec::QueueDepth { max_queued: 64 },
            AdmissionSpec::SloShedder {
                per_item_s: 0.04,
                pressure: 0.5,
            },
        ];
        report.cells[0].scenario = Some(1);
        report.cells[0].admission = Some("slo-shedder".to_string());
        let text = report.to_json();
        assert!(text.contains("\"scenarios\""));
        // The grid-level singular object form is reserved for
        // single-scenario grids; here `"scenario"` appears only as the
        // cell's index.
        assert!(!text.contains("\"scenario\": {"));
        assert!(text.contains("\"scenario\": 1"));
        assert!(text.contains("\"admission\""));
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.grid.scenarios, report.grid.scenarios);
        assert_eq!(back.grid.admission, report.grid.admission);
        assert_eq!(back.cells, report.cells);
        assert_eq!(back.to_json(), text, "render(parse(x)) == x");
    }

    #[test]
    fn schema_version_is_enforced() {
        let text = sample_report()
            .to_json()
            .replace("\"schema_version\": 4", "\"schema_version\": 999");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn gate_catches_drop_count_drift() {
        let baseline = sample_report();
        let mut candidate = baseline.clone();
        candidate.cells[0].metrics.dropped_arrivals += 1;
        let violations = gate(&baseline, &candidate, &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("dropped_arrivals")),
            "{violations:?}"
        );

        // Per-class drift is caught even when the totals stay flat.
        let mut reshuffled = baseline.clone();
        reshuffled.cells[0].metrics.tenants[0].dropped += 2;
        let violations = gate(&baseline, &reshuffled, &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("tenant slo=1")),
            "{violations:?}"
        );
    }

    #[test]
    fn gate_passes_on_identical_reports() {
        let report = sample_report();
        assert!(gate(&report, &report, &GateConfig::default()).is_empty());
    }

    #[test]
    fn gate_catches_correctness_drift() {
        let baseline = sample_report();
        let mut candidate = baseline.clone();
        candidate.cells[0].metrics.cost_usd *= 1.001;
        let violations = gate(&baseline, &candidate, &GateConfig::default());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("cost_usd"), "{violations:?}");
    }

    #[test]
    fn gate_catches_throughput_regression_but_allows_speedup() {
        let baseline = sample_report();
        let mut slower = baseline.clone();
        slower.cells[0].metrics.throughput_pps *= 0.7;
        let violations = gate(&baseline, &slower, &GateConfig::default());
        assert!(
            violations.iter().any(|v| v.contains("throughput_pps")),
            "{violations:?}"
        );

        let mut faster = baseline.clone();
        faster.cells[0].metrics.throughput_pps *= 1.5;
        assert!(gate(&baseline, &faster, &GateConfig::default())
            .iter()
            .all(|v| !v.contains("throughput_pps")));
    }

    #[test]
    fn gate_tolerates_small_perf_wobble() {
        let baseline = sample_report();
        let mut candidate = baseline.clone();
        candidate.cells[0].metrics.throughput_pps *= 0.9; // within 20%
        candidate.cells[0].metrics.p99_latency_s *= 1.1; // within 20%
        assert!(gate(&baseline, &candidate, &GateConfig::default()).is_empty());
    }

    #[test]
    fn gate_flags_grid_shape_change() {
        let baseline = sample_report();
        let mut candidate = baseline.clone();
        candidate.cells.clear();
        let violations = gate(&baseline, &candidate, &GateConfig::default());
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("cell count"), "{violations:?}");
    }
}
