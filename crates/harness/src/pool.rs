//! The crossbeam-based worker pool.
//!
//! Sweep cells are embarrassingly parallel: every cell is seeded
//! independently, so execution order cannot leak into results. The pool
//! therefore needs no scheduling cleverness — a shared MPMC job channel,
//! N workers pulling until it drains, and results reassembled by index so
//! the output order matches the input order regardless of which worker
//! finished first.

use crossbeam::channel::unbounded;

/// Resolves a worker-count request: explicit value (clamped to ≥ 1), or
/// the machine's available parallelism.
#[must_use]
pub fn resolve_workers(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Maps `f` over `items` on `workers` threads, preserving input order in
/// the output.
///
/// `f` receives `(index, item)`. With `workers == 1` the items still flow
/// through the same channel plumbing, so the only difference between a
/// sequential and a parallel run is which thread computes each cell —
/// and, because cells are independently seeded, the results are
/// bit-for-bit identical.
///
/// # Panics
///
/// Propagates a panic from `f` (the run is aborted; remaining items may
/// be skipped).
pub fn parallel_map<I, T, F>(items: Vec<I>, workers: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, total);
    let (job_tx, job_rx) = unbounded();
    let (result_tx, result_rx) = unbounded();
    for job in items.into_iter().enumerate() {
        assert!(job_tx.send(job).is_ok(), "job receiver alive");
    }
    drop(job_tx);

    let mut slots: Vec<Option<T>> = Vec::with_capacity(total);
    slots.resize_with(total, || None);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            handles.push(scope.spawn(move || {
                while let Ok((index, item)) = job_rx.recv() {
                    let value = f(index, item);
                    if result_tx.send((index, value)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(result_tx);
        while let Ok((index, value)) = result_rx.recv() {
            slots[index] = Some(value);
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items, 8, |i, x| {
            // Finish out of order on purpose.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_equals_many() {
        let work = |_i: usize, x: u64| -> u64 { x.wrapping_mul(0x9e37_79b9).rotate_left(13) };
        let seq = parallel_map((0..64).collect(), 1, work);
        let par = parallel_map((0..64).collect(), 6, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..257).collect::<Vec<u32>>(), 4, |_, x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_clamped_to_item_count() {
        // More workers than items must not deadlock or drop results.
        let out = parallel_map(vec![1u32, 2], 64, |_, x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn resolve_workers_clamps_and_defaults() {
        assert_eq!(resolve_workers(Some(0)), 1);
        assert_eq!(resolve_workers(Some(3)), 3);
        assert!(resolve_workers(None) >= 1);
    }
}
