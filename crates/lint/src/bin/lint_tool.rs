//! `lint_tool` — the workspace invariant checker's CLI.
//!
//! The CI lints job runs `lint_tool check` beside `scenario_tool check`
//! and `scripts/check_docs.sh`, so a determinism hazard, a DAG
//! violation, a drifted schema version or a stale waiver fails the
//! build at lint time with a `path:line: rule-id: message` diagnostic —
//! long before a runtime byte-comparison could notice.
//!
//! Subcommands:
//!
//! * `check [--root DIR]` — run every rule family over the workspace
//!   (default: the current directory), apply `config/lint_allow.toml`,
//!   and print surviving violations one per line. Exit 0 when clean,
//!   1 on violations, 2 on usage or I/O errors.
//! * `rules` — list every rule id with its one-line summary.

use std::path::PathBuf;
use std::process::ExitCode;
use tangram_lint::{lint_workspace, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for rule in RULES {
                println!("{:<16} {}", rule.id, rule.summary);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: lint_tool check [--root DIR] | lint_tool rules");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("lint_tool: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("lint_tool: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("lint_tool: OK — all workspace invariants hold");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for violation in &violations {
                println!("{violation}");
            }
            eprintln!("lint_tool: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("lint_tool: {message}");
            ExitCode::from(2)
        }
    }
}
