//! The serialization-discipline rule family: schema versions stay in
//! sync across writer, parser and committed baselines, and the trace
//! event alphabet stays registered.
//!
//! Two rule ids:
//!
//! * `schema-sync` — every `baselines/BENCH_*.json` must carry the
//!   `schema_version` its writer stamps today. Harness-written reports
//!   (`bench_all`/`bench_overload`/`bench_fairness` grids) are checked
//!   against the `SCHEMA_VERSION` constant in
//!   `crates/harness/src/report.rs` (writer *and* parser *and*
//!   `bench_gate` share that one constant, so checking the baselines
//!   against it closes the loop); bins that own their format
//!   (`bench_throughput`, `bench_scenarios`) are checked against the
//!   literal in their own source — which must itself be consistent at
//!   every mention within the file.
//! * `trace-kinds` — in `crates/trace/src/event.rs`, the kind strings
//!   returned by `TraceEvent::kind()`, the entries of the
//!   `TraceEvent::KINDS` registry, and the tags `from_fields` can parse
//!   must be exactly the same set: an event kind that can be emitted
//!   but not replayed (or registered but never emitted) is a stale
//!   registry.

use crate::scan::scan;
use crate::walk::read_file;
use crate::Violation;
use std::path::Path;

/// Runs both serialization checks under `root`.
///
/// # Errors
///
/// Returns a message when a source or baseline file cannot be read.
pub fn check_schema(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = check_schema_versions(root)?;
    violations.extend(check_trace_kinds(root)?);
    Ok(violations)
}

/// First *standalone* run of ASCII digits in `text` — digits embedded
/// in an identifier (the `64` of `Json::U64(...)`) don't count.
fn first_int(text: &str) -> Option<u64> {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let standalone =
                i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if standalone {
                return text[start..i].parse().ok();
            }
        } else {
            i += 1;
        }
    }
    None
}

/// The harness-wide `SCHEMA_VERSION` constant and its line.
fn harness_schema(root: &Path) -> Result<Option<(u64, usize)>, String> {
    let rel = "crates/harness/src/report.rs";
    if !root.join(rel).is_file() {
        return Ok(None);
    }
    let file = scan(&read_file(root, rel)?);
    for line in file.code_lines() {
        if line.code.contains("SCHEMA_VERSION") && line.code.contains('=') {
            if let Some(eq) = line.code.find('=') {
                if let Some(value) = first_int(&line.code[eq..]) {
                    return Ok(Some((value, line.number)));
                }
            }
        }
    }
    Ok(None)
}

/// The schema literal a self-contained bench bin stamps, with every
/// in-file mention collected so writer and gate cannot drift apart.
fn bin_schema(root: &Path, rel: &str) -> Result<(Option<u64>, Vec<Violation>), String> {
    if !root.join(rel).is_file() {
        return Ok((None, Vec::new()));
    }
    let file = scan(&read_file(root, rel)?);
    let mut sites: Vec<(u64, usize)> = Vec::new();
    for line in &file.lines {
        if line.strings.iter().any(|s| s.contains("schema_version")) {
            if let Some(value) = first_int(&line.code) {
                sites.push((value, line.number));
            }
        }
    }
    let mut violations = Vec::new();
    if let Some(&(expected, first_line)) = sites.first() {
        for &(value, line) in &sites[1..] {
            if value != expected {
                violations.push(Violation::new(
                    rel,
                    line,
                    "schema-sync",
                    format!(
                        "schema_version {value} disagrees with {expected} on line {first_line} \
                         of the same file"
                    ),
                ));
            }
        }
        Ok((Some(expected), violations))
    } else {
        Ok((None, violations))
    }
}

fn check_schema_versions(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    let harness = harness_schema(root)?;
    let baselines = root.join("baselines");
    if !baselines.is_dir() {
        return Ok(violations);
    }
    let mut names: Vec<String> = std::fs::read_dir(&baselines)
        .map_err(|e| format!("baselines: {e}"))?
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let rel = format!("baselines/{name}");
        let stem = name
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let bin_rel = format!("crates/bench/src/bin/bench_{stem}.rs");
        let (bin_version, mut bin_violations) = bin_schema(root, &bin_rel)?;
        violations.append(&mut bin_violations);
        let (expected, owner) = match bin_version {
            Some(v) => (v, bin_rel),
            None => match harness {
                Some((v, line)) => (v, format!("crates/harness/src/report.rs:{line}")),
                None => continue,
            },
        };
        let text = read_file(root, &rel)?;
        let mut found = false;
        for (index, line) in text.lines().enumerate() {
            if let Some(at) = line.find("\"schema_version\"") {
                found = true;
                let value = first_int(&line[at + "\"schema_version\"".len()..]);
                if value != Some(expected) {
                    violations.push(Violation::new(
                        &rel,
                        index + 1,
                        "schema-sync",
                        format!(
                            "schema_version {} does not match the writer's {expected} \
                             (declared in {owner}); regenerate the baseline in this PR",
                            value.map_or_else(|| "?".to_string(), |v| v.to_string()),
                        ),
                    ));
                }
                break;
            }
        }
        if !found {
            violations.push(Violation::new(
                &rel,
                1,
                "schema-sync",
                "baseline carries no schema_version field".to_string(),
            ));
        }
    }
    Ok(violations)
}

/// Collected trace-kind strings: the registry table, the `kind()` match
/// arms, and the `from_fields` parser arms.
#[derive(Debug, Default)]
struct KindSets {
    /// `KINDS` table entries as `(kind, line)`.
    table: Vec<(String, usize)>,
    /// `kind()` arm strings as `(kind, line)`.
    emitted: Vec<(String, usize)>,
    /// `from_fields` arm tags as `(kind, line)`.
    parsed: Vec<(String, usize)>,
}

fn check_trace_kinds(root: &Path) -> Result<Vec<Violation>, String> {
    let rel = "crates/trace/src/event.rs";
    if !root.join(rel).is_file() {
        return Ok(Vec::new());
    }
    let file = scan(&read_file(root, rel)?);
    let mut sets = KindSets::default();
    let mut in_table = false;
    for line in file.code_lines() {
        let trimmed = line.code.trim_start();
        if line.code.contains("KINDS") && line.code.contains('[') {
            in_table = true;
            continue;
        }
        if in_table {
            if let Some(kind) = line.strings.first() {
                sets.table.push((kind.clone(), line.number));
            }
            if line.code.contains(']') {
                in_table = false;
            }
            continue;
        }
        if trimmed.starts_with("TraceEvent::") && line.code.contains("=> \"") {
            if let Some(kind) = line.strings.first() {
                sets.emitted.push((kind.clone(), line.number));
            }
        } else if trimmed.starts_with('"') && line.code.contains("=>") {
            if let Some(kind) = line.strings.first() {
                sets.parsed.push((kind.clone(), line.number));
            }
        }
    }

    let mut violations = Vec::new();
    if sets.table.is_empty() || sets.emitted.is_empty() {
        violations.push(Violation::new(
            rel,
            1,
            "trace-kinds",
            format!(
                "could not locate the KINDS registry and kind() arms ({} table entries, {} \
                 arms found)",
                sets.table.len(),
                sets.emitted.len()
            ),
        ));
        return Ok(violations);
    }
    let registered: Vec<&str> = sets.table.iter().map(|(k, _)| k.as_str()).collect();
    let emitted: Vec<&str> = sets.emitted.iter().map(|(k, _)| k.as_str()).collect();
    let parsed: Vec<&str> = sets.parsed.iter().map(|(k, _)| k.as_str()).collect();
    for (kind, line) in &sets.emitted {
        if !registered.contains(&kind.as_str()) {
            violations.push(Violation::new(
                rel,
                *line,
                "trace-kinds",
                format!("kind \"{kind}\" is emitted but missing from the KINDS registry"),
            ));
        }
    }
    for (kind, line) in &sets.table {
        if !emitted.contains(&kind.as_str()) {
            violations.push(Violation::new(
                rel,
                *line,
                "trace-kinds",
                format!("kind \"{kind}\" is registered in KINDS but no kind() arm emits it"),
            ));
        }
        if !parsed.contains(&kind.as_str()) {
            violations.push(Violation::new(
                rel,
                *line,
                "trace-kinds",
                format!("kind \"{kind}\" is registered in KINDS but from_fields cannot parse it"),
            ));
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_int_finds_the_leading_run() {
        assert_eq!(first_int("= 4;"), Some(4));
        assert_eq!(first_int(", Json::U64(12))"), Some(12));
        assert_eq!(first_int("no digits"), None);
    }
}
