//! Deterministic workspace traversal helpers.
//!
//! All lint output is sorted, but the walk itself is also kept
//! deterministic (directory entries sorted, `/`-separated relative
//! paths) so diagnostics are byte-stable across platforms and runs.

use std::path::{Path, PathBuf};

/// Every `.rs` file under `crates/*/src`, as sorted `/`-separated paths
/// relative to `root`. Crates without a `src` directory are skipped
/// (the DAG check still sees their manifest).
///
/// # Errors
///
/// Returns a message when a directory cannot be read.
pub fn rust_sources(root: &Path) -> Result<Vec<String>, String> {
    let crates = root.join("crates");
    let mut out = Vec::new();
    for dir in crate_dirs(root)? {
        let src = crates.join(&dir).join("src");
        if src.is_dir() {
            collect_rs(&src, &format!("crates/{dir}/src"), &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

/// Sorted crate directory names under `root/crates`.
///
/// # Errors
///
/// Returns a message when `root/crates` cannot be read.
pub fn crate_dirs(root: &Path) -> Result<Vec<String>, String> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(Vec::new());
    }
    let mut dirs = Vec::new();
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", crates.display()))?;
        if entry.path().is_dir() {
            dirs.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    dirs.sort();
    Ok(dirs)
}

fn collect_rs(dir: &Path, rel: &str, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut names: Vec<(String, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        names.push((
            entry.file_name().to_string_lossy().into_owned(),
            entry.path(),
        ));
    }
    names.sort();
    for (name, path) in names {
        if path.is_dir() {
            collect_rs(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push(format!("{rel}/{name}"));
        }
    }
    Ok(())
}

/// Reads `root/rel` to a string.
///
/// # Errors
///
/// Returns a message naming the file on any I/O failure.
pub fn read_file(root: &Path, rel: &str) -> Result<String, String> {
    std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_crates_dir_yields_no_sources() {
        let root = std::env::temp_dir().join("tangram-lint-empty-walk");
        let _ = std::fs::create_dir_all(&root);
        assert!(rust_sources(&root).expect("walk").is_empty());
        assert!(crate_dirs(&root).expect("dirs").is_empty());
    }
}
