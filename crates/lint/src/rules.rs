//! The determinism rule family: wall-clock, entropy, hash-ordering and
//! float-formatting scans over the workspace sources.
//!
//! Rule scopes follow the reproduction's determinism contract:
//!
//! * **`det-wall-clock`** and **`det-entropy`** scan *every* crate under
//!   `crates/*/src` — a wall-clock read or ambient entropy anywhere can
//!   leak into gated output, so the deliberately wall-clock sites (the
//!   live runtime's pacing epoch, the never-gated `bench_throughput`
//!   timing blocks) carry explicit waivers in `config/lint_allow.toml`
//!   instead of being silently out of scope.
//! * **`det-hash-order`** scans only the deterministic crates
//!   ([`DET_CRATES`]): `HashMap`/`HashSet` iteration order is
//!   unspecified, so any use on a path that can feed serialized output
//!   must be `BTreeMap`/`BTreeSet` (or waived with a justification).
//! * **`det-float-format`** scans only the BENCH/trace writer paths
//!   ([`WRITER_PATHS`]): debug-format specifiers (`{:?}`) on those paths
//!   render floats, and float formatting is exactly what the
//!   byte-identical baselines must never depend on outside the two
//!   sanctioned canonical writers (both waived, with justifications).
//!
//! Test code (`#[cfg(test)]` items) is skipped everywhere: a test using
//! `HashSet` to assert uniqueness cannot perturb serialized bytes.

use crate::scan::{has_word, scan};
use crate::walk::{read_file, rust_sources};
use crate::Violation;
use std::path::Path;

/// Crates whose code must stay free of unordered containers: everything
/// on the path from the simulation kernel to the serialized reports.
pub const DET_CRATES: [&str; 7] = [
    "core", "harness", "model", "sim", "stitch", "trace", "types",
];

/// Files whose output bytes are gated (BENCH json, golden traces, the
/// canonical scenario TOML), scanned by `det-float-format`. A path
/// ending in `/` is a directory prefix.
pub const WRITER_PATHS: [&str; 4] = [
    "crates/harness/src/json.rs",
    "crates/harness/src/report.rs",
    "crates/harness/src/scenario_file.rs",
    "crates/trace/src/",
];

/// Wall-clock tokens (word-boundary matched against comment-stripped
/// code).
const WALL_CLOCK: [&str; 2] = ["Instant", "SystemTime"];

/// Ambient-entropy tokens: anything that seeds outside `DetRng`.
const ENTROPY: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "getrandom",
    "OsRng",
    "RandomState",
    "rand::random",
];

/// Unordered-container tokens.
const HASH_ORDER: [&str; 2] = ["HashMap", "HashSet"];

/// A line whose code carries one of these is building an error/panic
/// message, not serialized output; debug specifiers there are exempt
/// from `det-float-format`.
const ERROR_CONTEXT: [&str; 8] = [
    "Err(",
    "err(",
    "map_err",
    "ok_or",
    "panic!",
    "assert",
    "unreachable!",
    "expect(",
];

/// Runs the determinism family over `root`'s `crates/*/src` trees.
///
/// # Errors
///
/// Returns a message when a source file cannot be read.
pub fn check_determinism(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for rel in rust_sources(root)? {
        let krate = crate_of(&rel);
        let det = DET_CRATES.contains(&krate);
        let writer = WRITER_PATHS.iter().any(|p| {
            if p.ends_with('/') {
                rel.starts_with(p)
            } else {
                rel == *p
            }
        });
        let text = read_file(root, &rel)?;
        let file = scan(&text);
        for line in file.code_lines() {
            if let Some(token) = WALL_CLOCK.iter().find(|t| has_word(&line.code, t)) {
                violations.push(Violation::new(
                    &rel,
                    line.number,
                    "det-wall-clock",
                    format!(
                        "`{token}` reads the wall clock; deterministic paths must use sim time"
                    ),
                ));
            }
            if let Some(token) = ENTROPY.iter().find(|t| has_word(&line.code, t)) {
                violations.push(Violation::new(
                    &rel,
                    line.number,
                    "det-entropy",
                    format!("`{token}` draws ambient entropy; every random path must fork DetRng"),
                ));
            }
            if det {
                if let Some(token) = HASH_ORDER.iter().find(|t| has_word(&line.code, t)) {
                    violations.push(Violation::new(
                        &rel,
                        line.number,
                        "det-hash-order",
                        format!(
                            "`{token}` iterates in unspecified order; use BTreeMap/BTreeSet on \
                             deterministic paths"
                        ),
                    ));
                }
            }
            if writer
                && line
                    .strings
                    .iter()
                    .any(|s| s.contains(":?}") || s.contains(":#?}"))
                && !ERROR_CONTEXT.iter().any(|t| line.code.contains(t))
            {
                violations.push(Violation::new(
                    &rel,
                    line.number,
                    "det-float-format",
                    "debug-format specifier in a BENCH/trace writer path; floats must route \
                     through the canonical writer"
                        .to_string(),
                ));
            }
        }
    }
    Ok(violations)
}

/// The crate short name a `crates/<name>/…` path belongs to.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_extracts_the_short_name() {
        assert_eq!(crate_of("crates/sim/src/rng.rs"), "sim");
        assert_eq!(crate_of("crates/core/src/policy/tangram.rs"), "core");
    }

    #[test]
    fn writer_path_prefixes_match_directories_and_files() {
        let is_writer = |rel: &str| {
            WRITER_PATHS.iter().any(|p| {
                if p.ends_with('/') {
                    rel.starts_with(p)
                } else {
                    rel == *p
                }
            })
        };
        assert!(is_writer("crates/trace/src/event.rs"));
        assert!(is_writer("crates/harness/src/json.rs"));
        assert!(!is_writer("crates/harness/src/pool.rs"));
    }
}
