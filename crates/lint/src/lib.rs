//! Static workspace invariant checker (`tangram-lint`).
//!
//! The reproduction's headline guarantee — SLO-aware batching results
//! gated by byte-identical BENCH/TRACE baselines at any worker or shard
//! count — rests on rules that, until this crate, were enforced only
//! *dynamically*: an ambient wall-clock read or a `HashMap` iteration
//! feeding serialized output is caught when (and only when) a runtime
//! byte-comparison happens to diverge, often PRs after the regression
//! landed. `tangram-lint` enforces those rules **statically**, at lint
//! time, the way the scenario loader validates scenario files before
//! execution.
//!
//! Five rule families, fourteen rules, each reporting
//! `path:line: rule-id: message` with a nonzero exit:
//!
//! * **Determinism** ([`rules`]) — `det-wall-clock`, `det-entropy`,
//!   `det-hash-order`, `det-float-format`.
//! * **Concurrency discipline** ([`conc`]) — `conc-raw-thread`,
//!   `conc-unbounded-channel`, `conc-lock-across-send`: the static leg
//!   of the concurrency argument whose dynamic leg is the bounded
//!   model checker (`crates/model`) — code stays inside the envelope
//!   the model proves.
//! * **Crate DAG** ([`dag`]) — `dag-edge`, `dag-cycle`, `dag-unlisted`,
//!   verified against the declared lattice ([`dag::LATTICE`], the DAG's
//!   source of truth).
//! * **Serialization discipline** ([`schema`]) — `schema-sync`,
//!   `trace-kinds`.
//! * **Waivers** ([`waiver`]) — `stale-waiver`, `waiver-format`:
//!   exemptions live in `config/lint_allow.toml` with mandatory
//!   justifications, and an *unused* waiver is itself an error, so
//!   exemptions cannot go stale silently.
//!
//! The scanner ([`scan`]) is hand-rolled and line-tracking, in the
//! style of the workspace's own TOML and JSONL readers — the vendored
//! serde is a no-op stub, so there is no `syn` to lean on. The crate
//! sits beside `stitch`/`trace` on the lattice and depends only on
//! `tangram-types`.
//!
//! ```
//! use tangram_lint::{RULES, Violation};
//!
//! // Every rule has a stable id and a one-line summary.
//! assert!(RULES.iter().any(|r| r.id == "det-wall-clock"));
//! let v = Violation::new("crates/sim/src/rng.rs", 3, "det-entropy", "example".to_string());
//! assert_eq!(v.to_string(), "crates/sim/src/rng.rs:3: det-entropy: example");
//! ```

pub mod conc;
pub mod dag;
pub mod rules;
pub mod scan;
pub mod schema;
pub mod waiver;
pub mod walk;

use std::path::Path;

// The dependency exists to keep the crate on the lattice beside
// `stitch`/`trace`; the error type is re-used for CLI-facing failures.
pub use tangram_types::error::ValidationError;

/// One lint finding, rendered as `path:line: rule-id: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// `/`-separated path relative to the workspace root.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Stable rule id (see [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Violation {
    /// Creates a finding.
    #[must_use]
    pub fn new(path: &str, line: usize, rule: &'static str, message: String) -> Violation {
        Violation {
            path: path.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One registered rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id, as waivers and diagnostics name it.
    pub id: &'static str,
    /// One-line summary (`lint_tool rules` output).
    pub summary: &'static str,
}

/// Every rule the linter can report, in stable order. The docs
/// cross-check in `scripts/check_docs.sh` holds `docs/ARCHITECTURE.md`'s
/// rule table to exactly this registry.
pub const RULES: [Rule; 14] = [
    Rule {
        id: "det-wall-clock",
        summary: "no Instant/SystemTime outside waived wall-clock shims",
    },
    Rule {
        id: "det-entropy",
        summary: "no ambient entropy; every random path forks DetRng",
    },
    Rule {
        id: "det-hash-order",
        summary: "no HashMap/HashSet in deterministic crates (BTree* instead)",
    },
    Rule {
        id: "det-float-format",
        summary: "no debug float formatting in BENCH/trace writer paths",
    },
    Rule {
        id: "conc-raw-thread",
        summary: "no thread::spawn/scope outside waived, model-checked sites",
    },
    Rule {
        id: "conc-unbounded-channel",
        summary: "no unbounded channels without a credit/drain waiver",
    },
    Rule {
        id: "conc-lock-across-send",
        summary: "no channel send/recv while a lock guard is live",
    },
    Rule {
        id: "dag-edge",
        summary: "dependency edges point down the declared lattice",
    },
    Rule {
        id: "dag-cycle",
        summary: "the crate graph stays acyclic",
    },
    Rule {
        id: "dag-unlisted",
        summary: "every crates/* package is declared on the lattice",
    },
    Rule {
        id: "schema-sync",
        summary: "baseline schema_version matches its writer's constant",
    },
    Rule {
        id: "trace-kinds",
        summary: "emitted, registered and parsed trace kinds agree",
    },
    Rule {
        id: "stale-waiver",
        summary: "every waiver in config/lint_allow.toml suppresses something",
    },
    Rule {
        id: "waiver-format",
        summary: "waivers carry file, known rule id and a justification",
    },
];

/// Runs every rule family over the workspace at `root`, applying the
/// waiver file, and returns the surviving violations sorted by
/// `(path, line, rule)`.
///
/// # Errors
///
/// Returns a message when a source, manifest or baseline file cannot be
/// read — I/O trouble, not a lint finding.
pub fn lint_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = rules::check_determinism(root)?;
    violations.extend(conc::check_concurrency(root)?);
    violations.extend(dag::check_dag(root)?);
    violations.extend(schema::check_schema(root)?);
    let (waivers, mut format_errors) = waiver::WaiverSet::load(root)?;
    let stale = waivers.apply(&mut violations);
    violations.append(&mut format_errors);
    violations.extend(stale);
    violations
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_kebab_case() {
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate rule ids");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id `{id}` is not kebab-case"
            );
        }
    }

    #[test]
    fn meta_rules_are_registered() {
        for meta in waiver::META_RULES {
            assert!(RULES.iter().any(|r| r.id == meta), "{meta} unregistered");
        }
    }
}
