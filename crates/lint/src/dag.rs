//! The crate-DAG rule family: every `crates/*/Cargo.toml` is checked
//! against the declared dependency lattice.
//!
//! [`LATTICE`] is the **source of truth** for the workspace's crate DAG
//! (ROADMAP's standing constraint, `docs/ARCHITECTURE.md`'s diagram is
//! prose over it). Each crate is assigned a layer; a crate may depend
//! only on crates in strictly lower layers, which makes cycles
//! impossible among declared crates by construction. Each crate also
//! declares exactly which vendored external crates it may use, so
//! `types`/`sim` stay dependency-light and a new external dependency
//! anywhere is a reviewed, declared event — the environment has no
//! crates.io access, so an undeclared external is a broken build at
//! best.
//!
//! Three rule ids:
//!
//! * `dag-unlisted` — a `crates/*` directory whose package is not on
//!   the lattice (new crates must land on it deliberately).
//! * `dag-edge` — a dependency edge that points sideways or up the
//!   lattice, targets an unknown crate, or pulls an undeclared external.
//! * `dag-cycle` — a dependency cycle among the discovered crates
//!   (belt-and-braces: unlisted crates bypass the layer check, so the
//!   cycle scan covers them too).

use crate::walk::crate_dirs;
use crate::Violation;
use std::collections::BTreeMap;
use std::path::Path;

/// One declared lattice position.
#[derive(Debug, Clone, Copy)]
pub struct LatticeEntry {
    /// Crate short name (`tangram-<name>`).
    pub name: &'static str,
    /// Layer; edges must point to strictly lower layers.
    pub layer: u32,
    /// Vendored external crates this crate may depend on
    /// (dev-dependencies included).
    pub externals: &'static [&'static str],
}

/// The declared dependency lattice — the workspace DAG's source of
/// truth. `types` and `sim` are pinned dependency-light.
pub const LATTICE: [LatticeEntry; 15] = [
    LatticeEntry {
        name: "types",
        layer: 0,
        externals: &["serde"],
    },
    LatticeEntry {
        name: "lint",
        layer: 1,
        externals: &[],
    },
    LatticeEntry {
        name: "model",
        layer: 1,
        externals: &[],
    },
    LatticeEntry {
        name: "sim",
        layer: 1,
        externals: &["rand", "serde"],
    },
    LatticeEntry {
        name: "stitch",
        layer: 1,
        externals: &["serde"],
    },
    LatticeEntry {
        name: "trace",
        layer: 1,
        externals: &[],
    },
    LatticeEntry {
        name: "infer",
        layer: 2,
        externals: &["serde"],
    },
    LatticeEntry {
        name: "net",
        layer: 2,
        externals: &["serde"],
    },
    LatticeEntry {
        name: "video",
        layer: 2,
        externals: &["serde"],
    },
    LatticeEntry {
        name: "serverless",
        layer: 3,
        externals: &["serde"],
    },
    LatticeEntry {
        name: "vision",
        layer: 3,
        externals: &["serde"],
    },
    LatticeEntry {
        name: "partition",
        layer: 4,
        externals: &["serde"],
    },
    LatticeEntry {
        name: "core",
        layer: 5,
        externals: &["crossbeam", "parking_lot", "serde"],
    },
    LatticeEntry {
        name: "harness",
        layer: 6,
        externals: &["crossbeam", "serde"],
    },
    LatticeEntry {
        name: "bench",
        layer: 7,
        externals: &["criterion"],
    },
];

fn lattice_entry(name: &str) -> Option<&'static LatticeEntry> {
    LATTICE.iter().find(|e| e.name == name)
}

/// One dependency edge as written in a manifest.
#[derive(Debug, Clone)]
struct Dep {
    /// Dependency key (`tangram-sim`, `serde`, …).
    name: String,
    /// 1-based manifest line.
    line: usize,
}

/// One parsed crate manifest.
#[derive(Debug, Clone)]
struct Manifest {
    /// Directory name under `crates/`.
    dir: String,
    /// Package name, `tangram-` prefix included.
    package: String,
    /// Line of `name = "…"`.
    package_line: usize,
    /// `[dependencies]` + `[dev-dependencies]` keys.
    deps: Vec<Dep>,
}

impl Manifest {
    fn rel(&self) -> String {
        format!("crates/{}/Cargo.toml", self.dir)
    }

    /// Short name: the package without the `tangram-` prefix.
    fn short(&self) -> &str {
        self.package
            .strip_prefix("tangram-")
            .unwrap_or(&self.package)
    }
}

/// Checks the workspace DAG under `root`.
///
/// # Errors
///
/// Returns a message when a manifest cannot be read.
pub fn check_dag(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    let mut manifests = Vec::new();
    for dir in crate_dirs(root)? {
        let rel = format!("crates/{dir}/Cargo.toml");
        let path = root.join(&rel);
        if !path.is_file() {
            violations.push(Violation::new(
                &rel,
                1,
                "dag-unlisted",
                format!("crates/{dir} has no Cargo.toml"),
            ));
            continue;
        }
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
        manifests.push(parse_manifest(&dir, &text));
    }

    for m in &manifests {
        let entry = lattice_entry(m.short());
        if entry.is_none() {
            violations.push(Violation::new(
                &m.rel(),
                m.package_line,
                "dag-unlisted",
                format!(
                    "crate `{}` is not on the declared lattice; new crates must be added to \
                     LATTICE in crates/lint/src/dag.rs",
                    m.package
                ),
            ));
        } else if m.short() != m.dir {
            violations.push(Violation::new(
                &m.rel(),
                m.package_line,
                "dag-unlisted",
                format!(
                    "package `{}` lives in crates/{} — directory and package short name must \
                     agree",
                    m.package, m.dir
                ),
            ));
        }
        for dep in &m.deps {
            match dep.name.strip_prefix("tangram-") {
                Some(target) => {
                    let (Some(from), Some(to)) = (entry, lattice_entry(target)) else {
                        // An unlisted endpoint already reports itself; a
                        // target with no directory at all is a dead edge.
                        if lattice_entry(target).is_none()
                            && !manifests.iter().any(|o| o.short() == target)
                        {
                            violations.push(Violation::new(
                                &m.rel(),
                                dep.line,
                                "dag-edge",
                                format!("dependency `{}` is not a workspace crate", dep.name),
                            ));
                        }
                        continue;
                    };
                    if from.layer <= to.layer {
                        violations.push(Violation::new(
                            &m.rel(),
                            dep.line,
                            "dag-edge",
                            format!(
                                "`{}` (layer {}) may not depend on `{}` (layer {}); edges must \
                                 point down the lattice",
                                m.short(),
                                from.layer,
                                target,
                                to.layer
                            ),
                        ));
                    }
                }
                None => {
                    if let Some(entry) = entry {
                        if !entry.externals.contains(&dep.name.as_str()) {
                            violations.push(Violation::new(
                                &m.rel(),
                                dep.line,
                                "dag-edge",
                                format!(
                                    "external `{}` is not declared for crate `{}` (allowed: \
                                     {:?})",
                                    dep.name,
                                    m.short(),
                                    entry.externals
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    violations.extend(find_cycles(&manifests));
    Ok(violations)
}

/// Reports each dependency cycle once, anchored at the closing edge of
/// the lexicographically-first crate in the cycle.
fn find_cycles(manifests: &[Manifest]) -> Vec<Violation> {
    let index: BTreeMap<&str, &Manifest> = manifests.iter().map(|m| (m.short(), m)).collect();
    let mut reported: Vec<Vec<String>> = Vec::new();
    let mut violations = Vec::new();
    for m in manifests {
        let mut stack = vec![m.short().to_string()];
        dfs(m, &index, &mut stack, &mut reported, &mut violations);
    }
    violations
}

fn dfs(
    m: &Manifest,
    index: &BTreeMap<&str, &Manifest>,
    stack: &mut Vec<String>,
    reported: &mut Vec<Vec<String>>,
    violations: &mut Vec<Violation>,
) {
    for dep in &m.deps {
        let Some(target) = dep.name.strip_prefix("tangram-") else {
            continue;
        };
        if let Some(pos) = stack.iter().position(|s| s == target) {
            // The membership set identifies the cycle; the first DFS
            // discovery (crates visited in sorted order) anchors the one
            // report deterministically.
            let mut members: Vec<String> = stack[pos..].to_vec();
            members.sort();
            if !reported.contains(&members) {
                reported.push(members);
                let path: Vec<&str> = stack[pos..].iter().map(String::as_str).collect();
                violations.push(Violation::new(
                    &m.rel(),
                    dep.line,
                    "dag-cycle",
                    format!("dependency cycle: {} -> {}", path.join(" -> "), target),
                ));
            }
            continue;
        }
        if let Some(next) = index.get(target) {
            stack.push(target.to_string());
            dfs(next, index, stack, reported, violations);
            stack.pop();
        }
    }
}

/// Parses the subset of a crate manifest the DAG check needs: the
/// package name and the dependency keys with their lines.
fn parse_manifest(dir: &str, text: &str) -> Manifest {
    let mut package = String::new();
    let mut package_line = 1;
    let mut deps = Vec::new();
    let mut section = String::new();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if section == "package" && package.is_empty() {
            if let Some(rest) = line.strip_prefix("name") {
                if let Some(value) = rest.trim_start().strip_prefix('=') {
                    package = value.trim().trim_matches('"').to_string();
                    package_line = line_no;
                }
            }
        }
        if section == "dependencies" || section == "dev-dependencies" {
            let key: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !key.is_empty() {
                deps.push(Dep {
                    name: key,
                    line: line_no,
                });
            }
        }
    }
    Manifest {
        dir: dir.to_string(),
        package,
        package_line,
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parse_extracts_name_and_dep_lines() {
        let m = parse_manifest(
            "sim",
            "[package]\nname = \"tangram-sim\"\n\n[dependencies]\nrand.workspace = true\n\
             tangram-types.workspace = true\n",
        );
        assert_eq!(m.package, "tangram-sim");
        assert_eq!(m.package_line, 2);
        assert_eq!(m.deps.len(), 2);
        assert_eq!(m.deps[0].name, "rand");
        assert_eq!(m.deps[0].line, 5);
        assert_eq!(m.deps[1].name, "tangram-types");
        assert_eq!(m.deps[1].line, 6);
    }

    #[test]
    fn the_lattice_is_layered_and_unique() {
        let mut names: Vec<&str> = LATTICE.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate lattice entries");
        assert_eq!(lattice_entry("types").expect("types").layer, 0);
        assert!(
            lattice_entry("bench").expect("bench").layer
                > lattice_entry("harness").expect("harness").layer
        );
    }

    #[test]
    fn cycles_are_reported_once() {
        let a = parse_manifest(
            "alpha",
            "[package]\nname = \"tangram-alpha\"\n[dependencies]\ntangram-beta.workspace = true\n",
        );
        let b = parse_manifest(
            "beta",
            "[package]\nname = \"tangram-beta\"\n[dependencies]\ntangram-alpha.workspace = true\n",
        );
        let violations = find_cycles(&[a, b]);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "dag-cycle");
        assert!(violations[0].message.contains("alpha -> beta -> alpha"));
    }
}
