//! The waiver allowlist: `config/lint_allow.toml`.
//!
//! A waiver exempts one `(file, rule)` pair and must say why:
//!
//! ```toml
//! [[allow]]
//! file = "crates/core/src/runtime.rs"
//! rule = "det-wall-clock"
//! justification = "LiveTangram is the wall-clock deployment shim"
//! ```
//!
//! Waivers are load-bearing, both ways: a violation matching a waiver
//! is suppressed, and a waiver matching **nothing** is itself an error
//! (`stale-waiver`) — an exemption whose reason has evaporated must be
//! deleted, not silently carried. Malformed entries (missing fields,
//! empty justifications, unknown or meta rule ids, duplicates) are
//! `waiver-format` errors. The meta rules `stale-waiver` and
//! `waiver-format` cannot themselves be waived.

use crate::Violation;
use std::path::Path;

/// The allowlist's location, relative to the workspace root.
pub const ALLOW_FILE: &str = "config/lint_allow.toml";

/// Rule ids that govern the waiver mechanism itself and are therefore
/// unwaivable.
pub const META_RULES: [&str; 2] = ["stale-waiver", "waiver-format"];

/// One parsed waiver entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Repo-relative file the waiver covers.
    pub file: String,
    /// Rule id the waiver suppresses in that file.
    pub rule: String,
    /// Why the exemption is sound (required, non-empty).
    pub justification: String,
    /// 1-based line of the entry's `[[allow]]` header.
    pub line: usize,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct WaiverSet {
    /// Entries in file order.
    pub entries: Vec<Waiver>,
}

impl WaiverSet {
    /// Parses an allowlist document, collecting `waiver-format`
    /// violations for malformed entries (well-formed entries still
    /// load, so one bad entry does not disable the rest).
    #[must_use]
    pub fn parse(text: &str) -> (WaiverSet, Vec<Violation>) {
        let mut entries: Vec<Waiver> = Vec::new();
        let mut violations = Vec::new();
        let mut current: Option<Waiver> = None;
        let mut violation = |line: usize, message: String| {
            violations.push(Violation::new(ALLOW_FILE, line, "waiver-format", message));
        };
        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = current.take() {
                    finish(done, &mut entries, &mut violation);
                }
                current = Some(Waiver {
                    file: String::new(),
                    rule: String::new(),
                    justification: String::new(),
                    line: line_no,
                });
                continue;
            }
            let Some((key, value)) = parse_entry(&line) else {
                violation(
                    line_no,
                    format!("expected `[[allow]]` or `key = \"value\"`, got `{line}`"),
                );
                continue;
            };
            let Some(entry) = current.as_mut() else {
                violation(line_no, format!("`{key}` outside any [[allow]] entry"));
                continue;
            };
            match key.as_str() {
                "file" => entry.file = value,
                "rule" => entry.rule = value,
                "justification" => entry.justification = value,
                other => violation(line_no, format!("unknown waiver key `{other}`")),
            }
        }
        if let Some(done) = current.take() {
            finish(done, &mut entries, &mut violation);
        }
        (WaiverSet { entries }, violations)
    }

    /// Loads `root/config/lint_allow.toml`; a missing file is an empty
    /// set (waivers are opt-in).
    ///
    /// # Errors
    ///
    /// Returns a message when the file exists but cannot be read.
    pub fn load(root: &Path) -> Result<(WaiverSet, Vec<Violation>), String> {
        let path = root.join(ALLOW_FILE);
        if !path.is_file() {
            return Ok((WaiverSet::default(), Vec::new()));
        }
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{ALLOW_FILE}: {e}"))?;
        Ok(Self::parse(&text))
    }

    /// Suppresses the violations this set covers, returning a
    /// `stale-waiver` violation for every entry that matched nothing.
    #[must_use]
    pub fn apply(&self, violations: &mut Vec<Violation>) -> Vec<Violation> {
        let mut used = vec![false; self.entries.len()];
        violations.retain(|v| {
            if META_RULES.contains(&v.rule) {
                return true;
            }
            let matched = self
                .entries
                .iter()
                .position(|w| w.file == v.path && w.rule == v.rule);
            match matched {
                Some(i) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        });
        self.entries
            .iter()
            .zip(used)
            .filter(|(_, used)| !used)
            .map(|(w, _)| {
                Violation::new(
                    ALLOW_FILE,
                    w.line,
                    "stale-waiver",
                    format!(
                        "waiver for {} / {} matches no violation; delete it or fix the rule id",
                        w.file, w.rule
                    ),
                )
            })
            .collect()
    }
}

/// Validates a completed entry and either records it or reports it.
fn finish(entry: Waiver, entries: &mut Vec<Waiver>, violation: &mut impl FnMut(usize, String)) {
    if entry.file.is_empty() || entry.rule.is_empty() {
        violation(
            entry.line,
            "waiver entry needs both `file` and `rule`".to_string(),
        );
        return;
    }
    if entry.justification.trim().is_empty() {
        violation(
            entry.line,
            format!(
                "waiver for {} / {} has no justification — every exemption must say why",
                entry.file, entry.rule
            ),
        );
        return;
    }
    if META_RULES.contains(&entry.rule.as_str()) {
        violation(
            entry.line,
            format!("rule `{}` governs waivers and cannot be waived", entry.rule),
        );
        return;
    }
    if !crate::RULES.iter().any(|r| r.id == entry.rule) {
        violation(
            entry.line,
            format!("unknown rule id `{}` (see `lint_tool rules`)", entry.rule),
        );
        return;
    }
    if entries
        .iter()
        .any(|w| w.file == entry.file && w.rule == entry.rule)
    {
        violation(
            entry.line,
            format!("duplicate waiver for {} / {}", entry.file, entry.rule),
        );
        return;
    }
    entries.push(entry);
}

/// `key = "value"` with a double-quoted value.
fn parse_entry(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim();
    let value = line[eq + 1..].trim();
    let value = value.strip_prefix('"')?.strip_suffix('"')?;
    if key.is_empty() || key.contains(char::is_whitespace) {
        return None;
    }
    Some((key.to_string(), value.to_string()))
}

/// Removes a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "# waivers\n[[allow]]\nfile = \"crates/a/src/x.rs\"\n\
                        rule = \"det-wall-clock\"\njustification = \"reason\"\n";

    #[test]
    fn well_formed_entries_load() {
        let (set, violations) = WaiverSet::parse(GOOD);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(set.entries.len(), 1);
        assert_eq!(set.entries[0].line, 2);
        assert_eq!(set.entries[0].rule, "det-wall-clock");
    }

    #[test]
    fn missing_justification_unknown_rule_and_duplicates_are_format_errors() {
        let text = "[[allow]]\nfile = \"a.rs\"\nrule = \"det-entropy\"\njustification = \"\"\n\
                    [[allow]]\nfile = \"b.rs\"\nrule = \"no-such-rule\"\njustification = \"x\"\n\
                    [[allow]]\nfile = \"c.rs\"\nrule = \"stale-waiver\"\njustification = \"x\"\n";
        let (set, violations) = WaiverSet::parse(text);
        assert!(set.entries.is_empty());
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations.iter().all(|v| v.rule == "waiver-format"));
        assert_eq!(violations[0].line, 1);
        assert_eq!(violations[1].line, 5);
        assert_eq!(violations[2].line, 9);
    }

    #[test]
    fn apply_suppresses_matches_and_reports_stale_entries() {
        let (set, _) = WaiverSet::parse(GOOD);
        let mut violations = vec![
            Violation::new("crates/a/src/x.rs", 3, "det-wall-clock", "hit".to_string()),
            Violation::new(
                "crates/a/src/x.rs",
                9,
                "det-entropy",
                "other rule".to_string(),
            ),
        ];
        let stale = set.apply(&mut violations);
        assert!(stale.is_empty(), "{stale:?}");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "det-entropy");

        let mut none: Vec<Violation> = Vec::new();
        let stale = set.apply(&mut none);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "stale-waiver");
        assert_eq!(stale[0].path, ALLOW_FILE);
        assert_eq!(stale[0].line, 2);
    }
}
