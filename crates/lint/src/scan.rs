//! A line-tracking Rust source scanner.
//!
//! The offline workspace has no `syn` (vendored serde is a compile-only
//! stub), so the linter reads source text directly — the same
//! hand-rolled, line-tracking approach the TOML scenario reader and the
//! JSONL trace parser take. The scanner does not parse Rust; it
//! tokenises just enough to answer the two questions every rule asks:
//!
//! * what does the **code** on line *N* say, with comments stripped and
//!   string-literal *contents* blanked (so a doc comment mentioning
//!   `Instant` never trips the wall-clock rule), and
//! * what string literals does line *N* carry (so the float-format rule
//!   can inspect format strings)?
//!
//! It tracks line comments, nested block comments, normal / raw / byte
//! string literals (including multi-line bodies), char literals vs
//! lifetimes, and marks every line covered by a `#[cfg(test)]` item so
//! determinism rules can skip test code — tests may use `HashSet` to
//! assert uniqueness without feeding serialized output.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// 1-based line number.
    pub number: usize,
    /// The line's code with comments removed and string contents
    /// blanked (the delimiting quotes remain, so `""` marks a literal).
    pub code: String,
    /// Contents of string-literal fragments on this line (a multi-line
    /// string contributes one fragment per line it spans).
    pub strings: Vec<String>,
    /// `true` when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A fully scanned source file.
#[derive(Debug, Clone, Default)]
pub struct ScannedFile {
    /// Lines in order; `lines[i].number == i + 1`.
    pub lines: Vec<SourceLine>,
}

impl ScannedFile {
    /// Non-test lines, the view determinism rules iterate.
    pub fn code_lines(&self) -> impl Iterator<Item = &SourceLine> {
        self.lines.iter().filter(|l| !l.in_test)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Nested block comment at the given depth.
    Block(u32),
    /// Normal (escaping) string literal.
    Str,
    /// Raw string closed by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Scans `text` into per-line code/strings views.
#[must_use]
pub fn scan(text: &str) -> ScannedFile {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut strings: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut mode = Mode::Code;
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {
            if matches!(mode, Mode::Str | Mode::RawStr(_)) && !current.is_empty() {
                strings.push(std::mem::take(&mut current));
            }
            lines.push(SourceLine {
                number: lines.len() + 1,
                code: std::mem::take(&mut code),
                strings: std::mem::take(&mut strings),
                in_test: false,
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            flush_line!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    // Line comment: drop the rest of the line.
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    mode = Mode::Block(1);
                    i += 2;
                }
                '"' => {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                }
                'r' | 'b' if raw_string_hashes(&chars, i).is_some() => {
                    let (hashes, skip) = raw_string_hashes(&chars, i).expect("checked");
                    code.push('"');
                    mode = Mode::RawStr(hashes);
                    i += skip;
                }
                'b' if chars.get(i + 1) == Some(&'"') => {
                    code.push('"');
                    mode = Mode::Str;
                    i += 2;
                }
                '\'' => {
                    // Char literal or lifetime. A literal is 'x' or '\x…'.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        i += 1;
                        code.push_str("' '");
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime tick.
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            },
            Mode::Block(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Mode::Str => match c {
                '\\' => {
                    if let Some(&esc) = chars.get(i + 1) {
                        current.push('\\');
                        current.push(esc);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    strings.push(std::mem::take(&mut current));
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                }
                c => {
                    current.push(c);
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    strings.push(std::mem::take(&mut current));
                    code.push('"');
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    current.push(c);
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !strings.is_empty() || !current.is_empty() {
        flush_line!();
    }

    let mut file = ScannedFile { lines };
    mark_test_items(&mut file);
    file
}

/// If position `i` starts a raw string (`r"`, `r#"`, `br##"`, …),
/// returns `(hash_count, chars_to_skip)` up to and including the
/// opening quote.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// `true` when the `"` at `i` is followed by `hashes` `#`s.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks every line covered by a `#[cfg(test)]` item. The attribute
/// guards the next item: the region runs to the matching close of the
/// first `{` after it (brace-counted over code, so braces in strings
/// and comments cannot confuse it), or to the first top-level `;` for
/// brace-less items.
fn mark_test_items(file: &mut ScannedFile) {
    let mut i = 0usize;
    while i < file.lines.len() {
        if !file.lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth = 0i64;
        let mut started = false;
        let mut end = file.lines.len() - 1;
        'outer: for (j, line) in file.lines.iter().enumerate().skip(start) {
            // Only look past the attribute itself on its own line.
            let code = if j == start {
                let at = line.code.find("#[cfg(test)]").expect("checked") + "#[cfg(test)]".len();
                &line.code[at..]
            } else {
                line.code.as_str()
            };
            for c in code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            end = j;
                            break 'outer;
                        }
                    }
                    ';' if !started && depth == 0 => {
                        end = j;
                        break 'outer;
                    }
                    _ => {}
                }
            }
        }
        for line in &mut file.lines[start..=end] {
            line.in_test = true;
        }
        i = end + 1;
    }
}

/// `true` when `code` contains `word` delimited by non-identifier
/// characters on both sides (`::`-qualified patterns work too: the
/// boundary test applies to the pattern's first and last characters).
#[must_use]
pub fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let begin = start + pos;
        let end = begin + word.len();
        let left_ok =
            begin == 0 || !is_ident_char(code[..begin].chars().next_back().expect("char"));
        let right_ok =
            end == code.len() || !is_ident_char(code[end..].chars().next().expect("char"));
        if left_ok && right_ok {
            return true;
        }
        start = end;
    }
    false
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_from_code() {
        let f = scan("let x = 1; // Instant::now\n/* HashMap */ let y = 2;\n");
        assert_eq!(f.lines[0].code.trim(), "let x = 1;");
        assert_eq!(f.lines[1].code.trim(), "let y = 2;");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = scan("/* a /* b */ still comment */ code();\n");
        assert_eq!(f.lines[0].code.trim(), "code();");
    }

    #[test]
    fn string_contents_move_to_the_strings_view() {
        let f = scan("let s = \"Instant {x:?}\"; HashMap::new();\n");
        assert_eq!(f.lines[0].code.trim(), "let s = \"\"; HashMap::new();");
        assert_eq!(f.lines[0].strings, vec!["Instant {x:?}".to_string()]);
    }

    #[test]
    fn raw_strings_and_escapes_are_tracked() {
        let f = scan("let a = r#\"x \" y\"#; let b = \"q\\\"r\";\n");
        assert_eq!(f.lines[0].strings.len(), 2);
        assert_eq!(f.lines[0].strings[0], "x \" y");
        assert_eq!(f.lines[0].strings[1], "q\\\"r");
    }

    #[test]
    fn char_literals_are_not_strings_and_lifetimes_survive() {
        let f = scan("let c = '\"'; fn f<'a>(x: &'a str) {}\n");
        assert!(f.lines[0].strings.is_empty());
        assert!(f.lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn multiline_strings_fragment_per_line() {
        let f = scan("let s = \"one\ntwo\";\nafter();\n");
        assert_eq!(f.lines[0].strings, vec!["one".to_string()]);
        assert_eq!(f.lines[1].strings, vec!["two".to_string()]);
        assert_eq!(f.lines[2].code.trim(), "after();");
    }

    #[test]
    fn cfg_test_items_are_marked_to_their_closing_brace() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = scan(src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, [false, true, true, true, true, false]);
    }

    #[test]
    fn word_boundaries_hold() {
        assert!(has_word("use std::time::Instant;", "Instant"));
        assert!(has_word("Instant::now()", "Instant"));
        assert!(!has_word("SimInstantaneous", "Instant"));
        assert!(!has_word("let instant = 3;", "Instant"));
        assert!(has_word("rand::random()", "rand::random"));
    }
}
