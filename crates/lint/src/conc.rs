//! The concurrency-discipline rule family.
//!
//! The sharded runtime's correctness argument has two legs: the bounded
//! model checker (`crates/model`) proves the credit protocol within its
//! preemption bounds, and these lints keep the *real* code inside the
//! envelope the model actually covers. A thread spawned outside the
//! sanctioned sites, a channel created ad hoc, or a lock held across a
//! blocking channel call is concurrency the model has never seen — so
//! each is a finding until a waiver ties it back to the checked
//! protocol.
//!
//! * **`conc-raw-thread`** — `thread::spawn` / `thread::scope` anywhere
//!   under `crates/*/src`. The sanctioned spawn sites (the live
//!   runtime's worker, `ShardSet::spawn`, the harness sweep pool) carry
//!   waivers in `config/lint_allow.toml` whose justifications name the
//!   protocol that disciplines them.
//! * **`conc-unbounded-channel`** — `unbounded` channel construction.
//!   Every sanctioned channel is either credit-bounded by protocol (the
//!   shard data channels, occupancy-checked by the model) or drained by
//!   construction (the runtime dispatch queue, the sweep pool's job
//!   list); a new unbounded channel needs the same argument, in a
//!   waiver justification.
//! * **`conc-lock-across-send`** — a `let`-bound lock guard still live
//!   on a line that calls `.send(` / `.recv(`. Blocking on a channel
//!   while holding a mutex is the shape of every deadlock the model
//!   checker hunts; the vendored channel itself never does this (its
//!   state lock is released before `notify_one`), and nothing else in
//!   the workspace should either. The tracker is a brace-depth
//!   heuristic over the scanner's comment-stripped code: a guard dies
//!   at an explicit `drop(guard)` or when its binding's scope closes.
//!
//! Test code is skipped everywhere, as in the determinism family: a
//! test thread cannot deadlock the production runtime.

use crate::scan::{has_word, scan};
use crate::walk::{read_file, rust_sources};
use crate::Violation;
use std::path::Path;

/// Raw-thread tokens (word-boundary matched against comment-stripped
/// code, so `std::thread::spawn` and a bare `thread::spawn` both hit).
const RAW_THREAD: [&str; 2] = ["thread::spawn", "thread::scope"];

/// Channel-construction token. Matches the call and the `use` import;
/// a file's waiver covers both, and an import with no call is dead code
/// the compiler already rejects.
const UNBOUNDED: &str = "unbounded";

/// One live lock guard: the binding's name and the brace depth its
/// scope closes at.
struct Guard {
    name: String,
    depth: i64,
}

/// Runs the concurrency family over `root`'s `crates/*/src` trees.
///
/// # Errors
///
/// Returns a message when a source file cannot be read.
pub fn check_concurrency(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for rel in rust_sources(root)? {
        let text = read_file(root, &rel)?;
        let file = scan(&text);
        let mut depth: i64 = 0;
        let mut guards: Vec<Guard> = Vec::new();
        for line in file.code_lines() {
            if let Some(token) = RAW_THREAD.iter().find(|t| has_word(&line.code, t)) {
                violations.push(Violation::new(
                    &rel,
                    line.number,
                    "conc-raw-thread",
                    format!(
                        "`{token}` outside the sanctioned spawn sites; new threads need a \
                         waiver naming the protocol that disciplines them"
                    ),
                ));
            }
            if has_word(&line.code, UNBOUNDED) {
                violations.push(Violation::new(
                    &rel,
                    line.number,
                    "conc-unbounded-channel",
                    "`unbounded` channel construction; sanctioned channels are credit-bounded \
                     or drained by construction, and say so in a waiver"
                        .to_string(),
                ));
            }

            // Lock-guard tracking. Order within the line is beyond a
            // line scanner, so a guard born on this line is considered
            // live for the whole line — `let g = m.lock(); g.send(x)`
            // on one line still reports.
            if let Some(name) = guard_binding(&line.code) {
                guards.push(Guard { name, depth });
            }
            for guard_idx in (0..guards.len()).rev() {
                if line
                    .code
                    .contains(&format!("drop({})", guards[guard_idx].name))
                {
                    guards.remove(guard_idx);
                }
            }
            if !guards.is_empty() && (line.code.contains(".send(") || line.code.contains(".recv("))
            {
                let holder = &guards[guards.len() - 1].name;
                violations.push(Violation::new(
                    &rel,
                    line.number,
                    "conc-lock-across-send",
                    format!(
                        "channel call while lock guard `{holder}` is live; blocking under a \
                         mutex is the deadlock shape the model checker hunts"
                    ),
                ));
            }
            // Track scope depth after the line's checks: a guard bound
            // at depth d dies when depth drops back to d.
            for c in line.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        guards.retain(|g| g.depth <= depth);
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(violations)
}

/// Extracts the binding name from `let <name> = <expr>.lock(…)` (with
/// or without `mut`), the only guard shape the tracker follows.
fn guard_binding(code: &str) -> Option<String> {
    if !code.contains(".lock(") {
        return None;
    }
    let let_at = code.find("let ")?;
    let rest = &code[let_at + 4..];
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    let eq = rest.find('=')?;
    // The `.lock(` must sit on the right-hand side of this binding.
    if name.is_empty() || !rest[eq..].contains(".lock(") {
        return None;
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_binding_extracts_simple_lock_bindings() {
        assert_eq!(
            guard_binding("let state = self.shared.state.lock().unwrap();"),
            Some("state".to_string())
        );
        assert_eq!(
            guard_binding("    let mut g = mutex.lock();"),
            Some("g".to_string())
        );
        assert_eq!(guard_binding("let x = compute();"), None);
        assert_eq!(guard_binding("locked.send(x);"), None);
        assert_eq!(guard_binding("let _ = foo(); // no lock"), None);
    }
}
