//! Seeded, forkable random-number streams.
//!
//! Every stochastic component (scene dynamics, sensor noise, inference
//! latency, cold starts, …) draws from its own [`DetRng`] forked from a
//! single experiment seed by a stable label. Forking decorrelates the
//! streams — adding draws to one component never perturbs another — which
//! is what makes ablations comparable across runs.
//!
//! The distributions the substrates need (normal, lognormal, Poisson,
//! exponential) are implemented here directly on top of `rand`'s uniform
//! source, avoiding an extra dependency.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    rng: SmallRng,
}

impl DetRng {
    /// Creates a stream from an experiment seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream for the component named `label`.
    ///
    /// The derived seed mixes the parent seed with an FNV-1a hash of the
    /// label, so `fork("gmm")` is stable across runs and distinct from
    /// `fork("latency")`.
    ///
    /// ```
    /// # use tangram_sim::rng::DetRng;
    /// let root = DetRng::new(42);
    /// let mut a1 = root.fork("component-a");
    /// let mut a2 = root.fork("component-a");
    /// let mut b = root.fork("component-b");
    /// let x1: f64 = a1.uniform();
    /// assert_eq!(x1, a2.uniform());
    /// assert_ne!(x1, b.uniform());
    /// ```
    #[must_use]
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::new(splitmix64(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// Derives an independent stream for an indexed entity (e.g. camera N).
    #[must_use]
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(self.derive_seed(label, index))
    }

    /// Derives the seed [`DetRng::fork_indexed`] would use, without
    /// constructing the stream.
    ///
    /// This is the hand-off point for components that carry a bare `u64`
    /// seed across a thread or config boundary — e.g. the experiment
    /// harness stamping each sweep cell's `EngineConfig::seed` — while
    /// staying on the same labelled-fork discipline as everything else.
    /// Results are independent of *when* or *where* the derived seed is
    /// consumed, which is what makes a parallel sweep bit-identical to a
    /// sequential one.
    #[must_use]
    pub fn derive_seed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix64(index.wrapping_add(0x9e37)))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.random_range(0..n)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging the first uniform away from zero.
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0, "negative std dev");
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal draw parameterised by the *underlying* normal's µ and σ.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential draw with the given rate λ (mean 1/λ).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        -self.uniform().max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Poisson draw with mean `lambda`.
    ///
    /// Uses Knuth's product method for small λ and a normal approximation
    /// (rounded, clamped at zero) for λ > 30 where Knuth's method becomes
    /// slow and numerically fragile.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal(lambda, lambda.sqrt());
            return x.round().max(0.0) as u64;
        }
        let limit = (-lambda).exp();
        let mut product = self.uniform();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.uniform();
        }
        count
    }

    /// Access to the raw `rand` generator for APIs that take `impl Rng`.
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// FNV-1a hash of a byte string (stable across platforms and runs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finaliser — scrambles related seeds into unrelated ones.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn forks_are_stable_and_distinct() {
        let root = DetRng::new(1234);
        let mut x = root.fork("alpha");
        let mut y = root.fork("alpha");
        let z = root.fork("beta");
        assert_eq!(x.uniform(), y.uniform());
        assert_ne!(x.seed(), z.seed());
    }

    #[test]
    fn fork_indexed_distinguishes_entities() {
        let root = DetRng::new(5);
        let s0 = root.fork_indexed("camera", 0).seed();
        let s1 = root.fork_indexed("camera", 1).seed();
        assert_ne!(s0, s1);
    }

    #[test]
    fn derive_seed_matches_fork_indexed() {
        let root = DetRng::new(5);
        assert_eq!(
            root.derive_seed("cell", 3),
            root.fork_indexed("cell", 3).seed()
        );
        assert_ne!(root.derive_seed("cell", 3), root.derive_seed("cell", 4));
        assert_ne!(
            root.derive_seed("cell", 3),
            root.derive_seed("trace", 3),
            "labels decorrelate streams"
        );
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = DetRng::new(99);
        for _ in 0..1000 {
            let v = r.uniform_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = DetRng::new(2024);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn poisson_mean_small_lambda() {
        let mut r = DetRng::new(7);
        let n = 20_000;
        let mean = (0..n).map(|_| r.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_large_lambda() {
        let mut r = DetRng::new(8);
        let n = 10_000;
        let mean = (0..n).map(|_| r.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = DetRng::new(9);
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-1.0), 0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::new(10);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            assert!(r.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn index_covers_range() {
        let mut r = DetRng::new(12);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
