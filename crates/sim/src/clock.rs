//! Clock abstraction shared by the discrete-event engine and the live
//! (threaded) runtime.
//!
//! The engine advances a [`ManualClock`] as it drains its event queue; the
//! live runtime in `tangram-core` provides a wall-clock-backed
//! implementation of the same [`Clock`] trait, so the scheduler code is
//! identical in both worlds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tangram_types::time::SimTime;

/// Source of "now" for schedulers and platforms.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> SimTime;
}

/// A clock advanced explicitly by the simulation driver.
///
/// Cloning shares the underlying instant, so a scheduler holding a clone
/// observes every [`ManualClock::advance_to`] performed by the driver.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at the simulation epoch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock already positioned at `at`.
    #[must_use]
    pub fn starting_at(at: SimTime) -> Self {
        let clock = Self::new();
        clock.advance_to(at);
        clock
    }

    /// Moves the clock to `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current instant — simulated time
    /// never flows backwards.
    pub fn advance_to(&self, at: SimTime) {
        let prev = self.micros.swap(at.as_micros(), Ordering::SeqCst);
        assert!(
            prev <= at.as_micros(),
            "clock moved backwards: {prev} -> {}",
            at.as_micros()
        );
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_to(SimTime::from_micros(500));
        assert_eq!(c.now(), SimTime::from_micros(500));
    }

    #[test]
    fn clones_share_the_instant() {
        let c = ManualClock::new();
        let view = c.clone();
        c.advance_to(SimTime::from_micros(123));
        assert_eq!(view.now(), SimTime::from_micros(123));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn rejects_backwards_motion() {
        let c = ManualClock::starting_at(SimTime::from_micros(100));
        c.advance_to(SimTime::from_micros(99));
    }

    #[test]
    fn trait_object_usable() {
        let c = ManualClock::starting_at(SimTime::from_micros(9));
        let dyn_clock: &dyn Clock = &c;
        assert_eq!(dyn_clock.now(), SimTime::from_micros(9));
    }
}
