//! A deterministic, time-ordered event queue.
//!
//! Events scheduled for the same instant pop in insertion order (stable
//! FIFO tie-breaking), which keeps multi-camera simulations reproducible
//! regardless of map iteration order or float rounding elsewhere.
//!
//! # Layout
//!
//! The heap itself stores only fixed-size, `Copy`-able *slots*
//! (`at`, `seq`, and an arena index); payloads live in a side arena
//! (`Vec<Option<T>>`) with a free list. Sift-up/sift-down during
//! `push`/`pop` therefore moves 24-byte slots instead of full payloads —
//! for enum payloads like the engine's `StreamEvent` (which embeds an
//! `Arrival`), that cuts the bytes shuffled per heap operation by an
//! order of magnitude. Ordering semantics are unchanged: min on
//! `(at, seq)`, FIFO on ties.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tangram_types::time::SimTime;

#[derive(Clone, Copy)]
struct Slot {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl PartialEq for Slot {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Slot {}

impl PartialOrd for Slot {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Slot {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // lowest-sequence) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of `(SimTime, T)` events with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Slot>,
    arena: Vec<Option<T>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            arena: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.arena[idx as usize] = Some(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.arena.len()).expect("event arena exceeds u32 slots");
                self.arena.push(Some(payload));
                idx
            }
        };
        self.heap.push(Slot { at, seq, idx });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let slot = self.heap.pop()?;
        let payload = self.arena[slot.idx as usize]
            .take()
            .expect("event arena slot already vacated");
        self.free.push(slot.idx);
        Some((slot.at, payload))
    }

    /// The firing time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.arena.clear();
        self.free.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_at", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 'c');
        q.push(t(10), 'a');
        q.push(t(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(t(42), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_keep_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "x1");
        q.push(t(3), "y");
        q.push(t(5), "x2");
        assert_eq!(q.pop().unwrap().1, "y");
        assert_eq!(q.pop().unwrap().1, "x1");
        assert_eq!(q.pop().unwrap().1, "x2");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn debug_shows_pending() {
        let mut q = EventQueue::new();
        q.push(t(1), 0u8);
        let s = format!("{q:?}");
        assert!(s.contains("pending: 1"), "unexpected debug output: {s}");
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Interleave pushes and pops so freed arena slots get reused;
        // the arena must never grow beyond the peak live population.
        for round in 0..10u64 {
            for i in 0..8u64 {
                q.push(t(round * 100 + i), round * 8 + i);
            }
            for _ in 0..8 {
                q.pop();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.arena.len() <= 8,
            "arena grew to {} slots for 8 live events",
            q.arena.len()
        );
    }

    #[test]
    fn recycled_queue_keeps_ordering() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        // Slot for "a" is free now; this push reuses it.
        q.push(t(5), "c");
        q.push(t(20), "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["c", "b", "d"]);
    }
}
