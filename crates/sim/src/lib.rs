//! Deterministic discrete-event simulation kernel.
//!
//! Everything in the Tangram reproduction runs on simulated time so that a
//! `(configuration, seed)` pair reproduces an experiment bit-for-bit:
//!
//! * [`event::EventQueue`] — a time-ordered queue with stable FIFO
//!   tie-breaking, the heart of the end-to-end engine;
//! * [`clock`] — the [`clock::Clock`] abstraction shared by the simulated
//!   and the live (threaded) runtime;
//! * [`driver::EventLoop`] — the queue and the clock stepped together:
//!   the discrete-event loop that drives the streaming engine's
//!   arrival/timer/completion/churn events;
//! * [`rng::DetRng`] — seeded, forkable random streams with the handful of
//!   distributions the substrates need (normal, lognormal, Poisson,
//!   exponential) implemented locally so no extra crates are required;
//! * [`stats`] — online statistics, histograms, and empirical CDFs used by
//!   every experiment to report exactly the series the paper plots.
//!
//! # Example
//!
//! ```
//! use tangram_sim::event::EventQueue;
//! use tangram_types::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_micros(20), "second");
//! q.push(SimTime::from_micros(10), "first");
//! assert_eq!(q.pop(), Some((SimTime::from_micros(10), "first")));
//! assert_eq!(q.pop(), Some((SimTime::from_micros(20), "second")));
//! ```

pub mod clock;
pub mod driver;
pub mod event;
pub mod rng;
pub mod stats;

pub use clock::{Clock, ManualClock};
pub use driver::EventLoop;
pub use event::EventQueue;
pub use rng::DetRng;
pub use stats::{EmpiricalCdf, Histogram, OnlineStats, TimeSeries};
