//! The discrete-event loop: an [`EventQueue`] married to a [`ManualClock`].
//!
//! Every event-driven runtime in the reproduction (the end-to-end engine,
//! the online streaming engine) follows the same shape: schedule events on
//! a time-ordered queue, pop the earliest, advance the clock to its firing
//! instant, and let the handler schedule follow-up events. [`EventLoop`]
//! owns exactly that shape so drivers cannot get the clock/queue pairing
//! wrong (e.g. handling an event without advancing "now", or letting time
//! flow backwards).
//!
//! Determinism inherits from both halves: [`EventQueue`]'s stable FIFO
//! tie-breaking orders same-instant events by insertion, and
//! [`ManualClock`] asserts monotonicity.
//!
//! ```
//! use tangram_sim::driver::EventLoop;
//! use tangram_types::time::SimTime;
//!
//! let mut events: EventLoop<&str> = EventLoop::new();
//! events.schedule(SimTime::from_micros(10), "boot");
//! let mut seen = Vec::new();
//! events.run(|ev, now, payload| {
//!     seen.push((now, payload));
//!     if payload == "boot" {
//!         // Handlers schedule follow-ups on the loop they run in.
//!         ev.schedule(now + tangram_types::time::SimDuration::from_micros(5), "tick");
//!     }
//! });
//! assert_eq!(seen.len(), 2);
//! assert_eq!(events.now(), SimTime::from_micros(15));
//! ```

use crate::clock::{Clock, ManualClock};
use crate::event::EventQueue;
use tangram_types::time::SimTime;

/// A deterministic discrete-event loop: queue + clock, stepped together.
#[derive(Debug, Default)]
pub struct EventLoop<E> {
    queue: EventQueue<E>,
    clock: ManualClock,
}

impl<E> EventLoop<E> {
    /// Creates an empty loop positioned at the simulation epoch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            clock: ManualClock::new(),
        }
    }

    /// The current instant (the firing time of the last stepped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// A shared view of the loop's clock, for components that read "now"
    /// through the [`Clock`] trait while the loop drives them.
    #[must_use]
    pub fn clock(&self) -> ManualClock {
        self.clock.clone()
    }

    /// Schedules `event` to fire at `at`.
    ///
    /// Instants already in the past are clamped to "now": a wake-up
    /// requested for a missed deadline fires immediately instead of
    /// violating clock monotonicity.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.clock.now()), event);
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pops the earliest event and advances the clock to its firing time.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = self.queue.pop()?;
        self.clock.advance_to(at);
        Some((at, event))
    }

    /// Drains the loop, calling `handler` for every event in time order.
    /// Handlers may schedule further events; the loop runs until idle.
    pub fn run<F: FnMut(&mut Self, SimTime, E)>(&mut self, mut handler: F) {
        while let Some((now, event)) = self.step() {
            handler(self, now, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn steps_advance_the_clock_in_order() {
        let mut ev = EventLoop::new();
        ev.schedule(t(30), 'c');
        ev.schedule(t(10), 'a');
        assert_eq!(ev.pending(), 2);
        assert_eq!(ev.step(), Some((t(10), 'a')));
        assert_eq!(ev.now(), t(10));
        assert_eq!(ev.step(), Some((t(30), 'c')));
        assert_eq!(ev.now(), t(30));
        assert!(ev.is_idle());
        assert_eq!(ev.step(), None);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut ev = EventLoop::new();
        ev.schedule(t(100), "late");
        let _ = ev.step();
        ev.schedule(t(5), "stale wake-up");
        // Fires at "now" (100), not in the past.
        assert_eq!(ev.step(), Some((t(100), "stale wake-up")));
    }

    #[test]
    fn run_drains_handler_scheduled_events() {
        let mut ev = EventLoop::new();
        ev.schedule(t(1), 3u32);
        let mut fired = Vec::new();
        ev.run(|ev, now, countdown| {
            fired.push((now, countdown));
            if countdown > 0 {
                ev.schedule(now + SimDuration::from_micros(2), countdown - 1);
            }
        });
        assert_eq!(fired, vec![(t(1), 3), (t(3), 2), (t(5), 1), (t(7), 0)]);
        assert!(ev.is_idle());
    }

    #[test]
    fn shared_clock_view_tracks_the_loop() {
        let mut ev = EventLoop::new();
        let view = ev.clock();
        ev.schedule(t(42), ());
        let _ = ev.step();
        assert_eq!(view.now(), t(42));
    }

    #[test]
    fn same_instant_events_fire_fifo() {
        let mut ev = EventLoop::new();
        for i in 0..10u32 {
            ev.schedule(t(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| ev.step().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}
