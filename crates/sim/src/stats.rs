//! Statistics collectors used by the experiment harness.
//!
//! * [`OnlineStats`] — single-pass mean/variance (Welford), the basis of
//!   the paper's latency estimator (`T_slack = µ + 3σ`, Eqn. 9);
//! * [`EmpiricalCdf`] — sample-based CDFs, matching the CDF plots in
//!   Figs. 3(b), 10(b) and 13;
//! * [`Histogram`] — fixed-width bins for distribution tables (Fig. 14);
//! * [`TimeSeries`] — time-stamped samples for per-frame series (Figs. 3(a),
//!   10(a)).

use serde::{Deserialize, Serialize};
use tangram_types::time::SimTime;

/// Single-pass mean / variance / extrema accumulator (Welford's method).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An empirical cumulative distribution built from raw samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl EmpiricalCdf {
    /// Creates an empty CDF.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        self.samples.extend(xs);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the CDF holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in CDF"));
            self.sorted = true;
        }
    }

    /// Fraction of samples `<= x` — the CDF evaluated at `x`.
    ///
    /// ```
    /// # use tangram_sim::stats::EmpiricalCdf;
    /// let mut cdf = EmpiricalCdf::new();
    /// cdf.extend([1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(cdf.fraction_at_or_below(2.5), 0.5);
    /// ```
    pub fn fraction_at_or_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`, nearest-rank): the smallest
    /// sample whose cumulative frequency reaches `q`, i.e. the
    /// `⌈q·n⌉`-th smallest (1-based), clamped so `q = 0` yields the
    /// minimum and `q = 1` the maximum.
    ///
    /// Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let n = self.samples.len();
        let rank = (q * n as f64).ceil() as usize;
        Some(self.samples[rank.clamp(1, n) - 1])
    }

    /// `n` evenly-spaced `(value, cumulative_probability)` points — exactly
    /// what a CDF plot needs.
    pub fn points(&mut self, n: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || n == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let len = self.samples.len();
        (0..n)
            .map(|i| {
                let idx = if n == 1 {
                    len - 1
                } else {
                    i * (len - 1) / (n - 1)
                };
                (self.samples[idx], (idx + 1) as f64 / len as f64)
            })
            .collect()
    }

    /// Mean of the samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with saturating edge bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    nan: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "empty histogram range [{lo}, {hi})");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            nan: 0,
        }
    }

    /// Adds an observation; values outside the range land in the edge
    /// bins. `NaN` has no position on the axis: it is counted in
    /// [`Histogram::total`] (and [`Histogram::nan_count`]) but binned
    /// nowhere, instead of silently landing in bin 0 via a float cast.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            self.total += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Raw counts per bin.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations (`NaN` observations included).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of `NaN` observations (counted in the total, in no bin).
    #[must_use]
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// `(bin_center, fraction)` pairs — the normalised distribution.
    #[must_use]
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }
}

/// Time-stamped scalar samples (per-frame RoI proportion, queue depth, …).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; timestamps should be non-decreasing.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(t, _)| *t <= at),
            "time series timestamps must be non-decreasing"
        );
        self.points.push((at, value));
    }

    /// All samples in order.
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Just the values, in time order.
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Mean of the values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn cdf_quantiles() {
        let mut cdf = EmpiricalCdf::new();
        cdf.extend((1..=100).map(f64::from));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        let median = cdf.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
    }

    #[test]
    fn quantile_is_true_nearest_rank() {
        // 10 samples at q = 0.5: nearest rank is ⌈0.5·10⌉ = 5, the 5th
        // smallest — not the 6th the old round((len−1)·q) produced.
        let mut cdf = EmpiricalCdf::new();
        cdf.extend((1..=10).map(f64::from));
        assert_eq!(cdf.quantile(0.5), Some(5.0));
        // 100 samples at q = 0.99: rank ⌈99⌉ = 99 → the 99th smallest.
        let mut cdf = EmpiricalCdf::new();
        cdf.extend((1..=100).map(f64::from));
        assert_eq!(cdf.quantile(0.99), Some(99.0));
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        // Small cells: with 10 samples, p99 rank ⌈9.9⌉ = 10 → the max.
        let mut cdf = EmpiricalCdf::new();
        cdf.extend((1..=10).map(f64::from));
        assert_eq!(cdf.quantile(0.99), Some(10.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(10.0));
    }

    #[test]
    fn cdf_fraction_below() {
        let mut cdf = EmpiricalCdf::new();
        cdf.extend([0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(cdf.fraction_at_or_below(0.05), 0.0);
        assert_eq!(cdf.fraction_at_or_below(0.3), 0.6);
        assert_eq!(cdf.fraction_at_or_below(9.9), 1.0);
    }

    #[test]
    fn cdf_points_monotone() {
        let mut cdf = EmpiricalCdf::new();
        cdf.extend((0..50).map(|i| f64::from(i) * 0.37));
        let pts = cdf.points(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_empty_behaviour() {
        let mut cdf = EmpiricalCdf::new();
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.points(5).is_empty());
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-5.0); // below -> first bin
        h.push(0.5);
        h.push(9.99);
        h.push(100.0); // above -> last bin
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
    }

    #[test]
    fn histogram_normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..100 {
            h.push(f64::from(i) / 100.0);
        }
        let total: f64 = h.normalized().iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_nan_without_binning() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(f64::NAN);
        h.push(0.1);
        h.push(f64::NAN);
        assert_eq!(h.total(), 3);
        assert_eq!(h.nan_count(), 2);
        // NaN lands in no bin — in particular not bin 0 via the cast.
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
        // Normalised fractions cover only the binned mass.
        let binned: f64 = h.normalized().iter().map(|&(_, f)| f).sum();
        assert!((binned - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn time_series_basics() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_micros(0), 1.0);
        ts.push(SimTime::from_micros(10), 3.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.values(), vec![1.0, 3.0]);
        assert!((ts.mean() - 2.0).abs() < 1e-12);
    }
}
