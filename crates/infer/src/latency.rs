//! Batch inference latency model.
//!
//! Execution time is modelled as `base + per_megapixel × Mpx`, scaled by
//! multiplicative lognormal noise with mean 1. The affine-in-pixels shape
//! matches how batched CNN inference behaves once the GPU is saturated,
//! and reproduces the paper's observations:
//!
//! * Fig. 2b — RoI inference at ~59 ms for one camera, super-linear queue
//!   growth as cameras pile on;
//! * Fig. 14a — per-batch execution of 0.1–0.5 s for 1–9 canvases;
//! * Fig. 8 — full-frame (8.3 Mpx) invocations costing ≈ 2× a stitched
//!   4-canvas Tangram request on the serverless GPU slice.

use serde::{Deserialize, Serialize};
use tangram_sim::rng::DetRng;
use tangram_types::time::SimDuration;

/// Affine-in-pixels latency model with lognormal noise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceLatencyModel {
    /// Profile name (for reports).
    pub name: &'static str,
    /// Fixed per-invocation overhead (kernel launches, pre/post-processing,
    /// result serialisation).
    pub base: SimDuration,
    /// Marginal cost per megapixel of batched input.
    pub per_megapixel: SimDuration,
    /// σ of the multiplicative lognormal noise (mean-1 parameterisation).
    pub noise_sigma: f64,
}

impl InferenceLatencyModel {
    /// Yolov8x on the testbed's RTX-4090-class GPU (Figs. 2b/12/13/14).
    #[must_use]
    pub fn rtx4090_yolov8x() -> Self {
        Self {
            name: "yolov8x-rtx4090",
            base: SimDuration::from_millis(35),
            per_megapixel: SimDuration::from_millis(45),
            noise_sigma: 0.10,
        }
    }

    /// Yolov8x on an Alibaba Function Compute GPU slice
    /// (2 vCPU / 4 GB / 6 GB GPU; Fig. 8's cost magnitudes).
    #[must_use]
    pub fn alibaba_gpu_slice() -> Self {
        Self {
            name: "yolov8x-fc-gpu",
            base: SimDuration::from_millis(150),
            per_megapixel: SimDuration::from_millis(180),
            noise_sigma: 0.12,
        }
    }

    /// Expected execution time for `megapixels` of batched input.
    #[must_use]
    pub fn mean(&self, megapixels: f64) -> SimDuration {
        debug_assert!(megapixels >= 0.0);
        self.base + self.per_megapixel.mul_f64(megapixels)
    }

    /// Samples an execution time (lognormal noise with mean 1).
    pub fn sample(&self, megapixels: f64, rng: &mut DetRng) -> SimDuration {
        let mean = self.mean(megapixels).as_secs_f64();
        let s = self.noise_sigma;
        // E[lognormal(−σ²/2, σ)] = 1, so the sample mean stays calibrated.
        let noise = rng.lognormal(-s * s / 2.0, s);
        SimDuration::from_secs_f64(mean * noise)
    }

    /// Megapixels of a batch of `n` canvases of the given size — the
    /// quantity the scheduler passes to [`Self::sample`].
    #[must_use]
    pub fn batch_megapixels(n: usize, canvas: tangram_types::geometry::Size) -> f64 {
        n as f64 * canvas.megapixels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::Size;

    #[test]
    fn mean_is_affine() {
        let m = InferenceLatencyModel::rtx4090_yolov8x();
        let one = m.mean(1.0);
        let two = m.mean(2.0);
        assert_eq!(
            two.as_micros() - one.as_micros(),
            m.per_megapixel.as_micros()
        );
        assert_eq!(m.mean(0.0), m.base);
    }

    #[test]
    fn calibration_matches_fig2b_scale() {
        // One camera's worth of RoIs (~0.5 Mpx) lands near 59 ms.
        let m = InferenceLatencyModel::rtx4090_yolov8x();
        let t = m.mean(0.5).as_millis_f64();
        assert!((45.0..75.0).contains(&t), "one-camera latency {t} ms");
    }

    #[test]
    fn calibration_matches_fig14a_scale() {
        // Batches of 1–9 canvases run in ~0.08–0.5 s.
        let m = InferenceLatencyModel::rtx4090_yolov8x();
        let canvas = Size::CANVAS_1024;
        let one = m.mean(InferenceLatencyModel::batch_megapixels(1, canvas));
        let nine = m.mean(InferenceLatencyModel::batch_megapixels(9, canvas));
        assert!(
            one.as_millis() >= 60 && one.as_millis() <= 150,
            "1 canvas: {one}"
        );
        assert!(
            nine.as_millis() >= 350 && nine.as_millis() <= 600,
            "9 canvases: {nine}"
        );
    }

    #[test]
    fn full_frame_slower_than_stitched_on_fc() {
        // Fig. 8's driver: a full 4K frame (8.3 Mpx) costs much more than
        // the ~4 canvases Tangram stitches the same content into.
        let m = InferenceLatencyModel::alibaba_gpu_slice();
        let full = m.mean(Size::UHD_4K.megapixels());
        let stitched = m.mean(InferenceLatencyModel::batch_megapixels(
            4,
            Size::CANVAS_1024,
        ));
        assert!(full.as_secs_f64() > 1.5 * stitched.as_secs_f64());
    }

    #[test]
    fn samples_center_on_mean() {
        let m = InferenceLatencyModel::rtx4090_yolov8x();
        let mut rng = DetRng::new(7);
        let n = 4000;
        let mean_s: f64 = (0..n)
            .map(|_| m.sample(2.0, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        let expected = m.mean(2.0).as_secs_f64();
        assert!(
            (mean_s / expected - 1.0).abs() < 0.03,
            "sample mean {mean_s} vs {expected}"
        );
    }

    #[test]
    fn samples_are_positive_and_noisy() {
        let m = InferenceLatencyModel::rtx4090_yolov8x();
        let mut rng = DetRng::new(8);
        let a = m.sample(1.0, &mut rng);
        let b = m.sample(1.0, &mut rng);
        assert!(a.as_micros() > 0);
        assert_ne!(a, b, "noise must vary");
    }

    #[test]
    fn batch_megapixels_scales() {
        let mpx = InferenceLatencyModel::batch_megapixels(3, Size::CANVAS_1024);
        assert!((mpx - 3.0 * 1.048_576).abs() < 1e-9);
    }
}
