//! The detection simulator.
//!
//! Detection quality in the paper is governed by how large an object
//! appears *in the pixels actually presented to the model*: downsizing a
//! 4K frame to 480P shrinks every object 81-fold in area and AP collapses
//! from 0.744 to 0.374 (Fig. 4b), while Tangram's stitching presents
//! patches at native scale and loses nothing. We model per-object recall
//! as a calibrated function of presented area, times a per-scene base
//! difficulty (Table III's full-frame column), times a visibility factor
//! for objects clipped at patch boundaries.

use crate::ap::Detection;
use serde::{Deserialize, Serialize};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;

/// Resolution-sensitivity profile of a trained model.
///
/// `size_factor(a) = 1 / (1 + (a_half/a)^s + (a/a_big)^t)` where `a` is
/// the object's presented pixel area: the first penalty term models
/// too-small objects (downsizing), the second too-large ones (upsizing
/// past the training distribution, Fig. 4b's 480P-trained curve).
#[derive(Debug, Clone, Serialize)]
pub struct ResolutionProfile {
    /// Profile name.
    pub name: &'static str,
    /// Presented area (px²) at which small-object recall halves.
    pub a_half: f64,
    /// Steepness of the small-object penalty.
    pub s: f64,
    /// Presented area above which over-scaling starts to hurt
    /// (`f64::INFINITY` disables the term).
    pub a_big: f64,
    /// Steepness of the over-scaling penalty.
    pub t: f64,
    /// Recall ceiling of the model (training quality).
    pub ceiling: f64,
}

impl ResolutionProfile {
    /// Yolov8x trained on the 4K PANDA split (Fig. 4b blue curve).
    /// Calibrated so that presenting a typical 12 000 px² object at
    /// 1080P/720P/480P scales reproduces AP ratios ≈ 0.93/0.81/0.50.
    #[must_use]
    pub fn yolov8x_4k() -> Self {
        Self {
            name: "yolov8x-4k",
            a_half: 590.0,
            s: 1.8,
            a_big: f64::INFINITY,
            t: 1.0,
            ceiling: 1.0,
        }
    }

    /// Yolov8x trained on the 480P split (Fig. 4b orange curve): fine on
    /// small presented objects, degrades when inputs are upsized.
    #[must_use]
    pub fn yolov8x_480p() -> Self {
        Self {
            name: "yolov8x-480p",
            a_half: 60.0,
            s: 1.8,
            a_big: 28_900.0,
            t: 1.02,
            ceiling: 0.78,
        }
    }

    /// The size-dependent recall multiplier for a presented area.
    #[must_use]
    pub fn size_factor(&self, presented_area: f64) -> f64 {
        if presented_area <= 0.0 {
            return 0.0;
        }
        let small = (self.a_half / presented_area).powf(self.s);
        let big = if self.a_big.is_finite() {
            (presented_area / self.a_big).powf(self.t)
        } else {
            0.0
        };
        self.ceiling / (1.0 + small + big)
    }
}

/// An object as presented to the model after the transmission pipeline
/// (full frame, masked frame, or stitched patches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PresentedObject {
    /// Ground-truth track (for diagnostics; not used by detection).
    pub track: u64,
    /// The object's box in *frame* coordinates (detections are evaluated
    /// in frame space, mapping back through the lossless stitch).
    pub true_rect: Rect,
    /// Pixel area the model actually sees for this object (after any
    /// down/upscaling).
    pub presented_area: f64,
    /// Fraction of the object visible in the presented pixels (< 1 when a
    /// patch boundary clips it).
    pub visible_fraction: f64,
}

impl PresentedObject {
    /// An object presented at native scale, fully visible.
    #[must_use]
    pub fn native(track: u64, rect: Rect) -> Self {
        Self {
            track,
            true_rect: rect,
            presented_area: rect.area() as f64,
            visible_fraction: 1.0,
        }
    }

    /// An object presented after uniform rescaling by `scale` (e.g. 0.125
    /// for a 4K frame downsized to 480P).
    #[must_use]
    pub fn scaled(track: u64, rect: Rect, scale: f64) -> Self {
        Self {
            track,
            true_rect: rect,
            presented_area: rect.area() as f64 * scale * scale,
            visible_fraction: 1.0,
        }
    }
}

/// Simulates the detector head: recall, box jitter, confidence, false
/// positives.
#[derive(Debug, Clone, Serialize)]
pub struct DetectionSimulator {
    /// The model's resolution profile.
    pub profile: ResolutionProfile,
    /// False positives per presented megapixel.
    pub fp_per_mpx: f64,
    /// Relative box jitter of true positives (fraction of box size).
    pub jitter: f64,
    /// Minimum visible fraction below which an object cannot be detected.
    pub min_visible: f64,
}

impl DetectionSimulator {
    /// Creates a simulator with defaults calibrated for Yolov8x-style
    /// serving (low FP rate at the confidence threshold the paper serves
    /// at, tight boxes).
    #[must_use]
    pub fn new(profile: ResolutionProfile) -> Self {
        Self {
            profile,
            fp_per_mpx: 0.05,
            jitter: 0.04,
            min_visible: 0.35,
        }
    }

    /// Detection probability for one presented object in a scene with the
    /// given base difficulty (Table III full-frame AP).
    #[must_use]
    pub fn detection_probability(&self, obj: &PresentedObject, scene_base: f64) -> f64 {
        if obj.visible_fraction < self.min_visible {
            return 0.0;
        }
        // Partially visible objects are harder: ramp from min_visible→1.
        let vis =
            ((obj.visible_fraction - self.min_visible) / (1.0 - self.min_visible)).clamp(0.0, 1.0);
        let vis_factor = 0.5 + 0.5 * vis;
        (scene_base * self.profile.size_factor(obj.presented_area) * vis_factor).clamp(0.0, 1.0)
    }

    /// Runs the detector over presented objects plus `presented_mpx` of
    /// pixels (for the false-positive rate), returning detections in frame
    /// coordinates.
    pub fn detect(
        &self,
        objects: &[PresentedObject],
        presented_mpx: f64,
        scene_base: f64,
        frame_bounds: Rect,
        rng: &mut DetRng,
    ) -> Vec<Detection> {
        let mut out = Vec::new();
        for obj in objects {
            let p = self.detection_probability(obj, scene_base);
            if !rng.chance(p) {
                continue;
            }
            let rect = self.jitter_box(obj.true_rect, &frame_bounds, rng);
            // Confidence correlates with how easy the object was.
            let confidence = (0.55 + 0.4 * p + rng.normal(0.0, 0.05)).clamp(0.05, 0.999);
            out.push(Detection { rect, confidence });
        }
        // False positives: low-confidence clutter.
        let expected_fp = self.fp_per_mpx * presented_mpx.max(0.0);
        for _ in 0..rng.poisson(expected_fp) {
            let w = rng.uniform_in(30.0, 120.0) as u32;
            let h = (f64::from(w) * rng.uniform_in(1.5, 2.2)) as u32;
            let max_x = frame_bounds.width.saturating_sub(w).max(1) as usize;
            let max_y = frame_bounds.height.saturating_sub(h).max(1) as usize;
            let x = frame_bounds.x + rng.index(max_x) as u32;
            let y = frame_bounds.y + rng.index(max_y) as u32;
            let confidence = (0.3 + rng.uniform() * 0.35).min(0.9);
            out.push(Detection {
                rect: Rect::new(x, y, w, h),
                confidence,
            });
        }
        out
    }

    fn jitter_box(&self, rect: Rect, bounds: &Rect, rng: &mut DetRng) -> Rect {
        let jw = f64::from(rect.width) * self.jitter;
        let jh = f64::from(rect.height) * self.jitter;
        let x = (f64::from(rect.x) + rng.normal(0.0, jw)).max(0.0) as u32;
        let y = (f64::from(rect.y) + rng.normal(0.0, jh)).max(0.0) as u32;
        let w = ((f64::from(rect.width) * (1.0 + rng.normal(0.0, self.jitter))).max(4.0)) as u32;
        let h = ((f64::from(rect.height) * (1.0 + rng.normal(0.0, self.jitter))).max(4.0)) as u32;
        Rect::new(x, y, w, h).clamped(bounds).unwrap_or(rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::Size;

    #[test]
    fn size_factor_reproduces_fig4b_downsizing() {
        // A typical 12 000 px² PANDA person at the five evaluation
        // resolutions; ratios against the paper's 4K-trained AP curve
        // (0.744 → 0.736/0.691/0.600/0.374).
        let p = ResolutionProfile::yolov8x_4k();
        let a0 = 12_000.0;
        let native = p.size_factor(a0);
        let checks = [
            (2.0 / 3.0, 0.736 / 0.744), // 2K
            (0.5, 0.691 / 0.744),       // 1080P
            (1.0 / 3.0, 0.600 / 0.744), // 720P
            (2.0 / 9.0, 0.374 / 0.744), // 480P
        ];
        for (scale, expected_ratio) in checks {
            let ratio = p.size_factor(a0 * scale * scale) / native;
            assert!(
                (ratio - expected_ratio).abs() < 0.08,
                "scale {scale}: ratio {ratio:.3} vs paper {expected_ratio:.3}"
            );
        }
    }

    #[test]
    fn size_factor_reproduces_fig4b_upsizing() {
        // The 480P-trained model degrades as inputs are upsized towards 4K
        // (0.551 at 480P down to 0.411 at 4K).
        let p = ResolutionProfile::yolov8x_480p();
        let native_480 = 12_000.0 * (2.0f64 / 9.0).powi(2); // ≈ 593 px²
        let at_480 = p.size_factor(native_480);
        let at_4k = p.size_factor(12_000.0);
        let ratio = at_4k / at_480;
        let paper = 0.411 / 0.551;
        assert!(
            (ratio - paper).abs() < 0.08,
            "upsizing ratio {ratio:.3} vs paper {paper:.3}"
        );
    }

    #[test]
    fn native_beats_downsized_for_4k_model() {
        let p = ResolutionProfile::yolov8x_4k();
        assert!(p.size_factor(12_000.0) > p.size_factor(12_000.0 / 16.0));
        assert_eq!(p.size_factor(0.0), 0.0);
    }

    #[test]
    fn clipped_objects_harder_invisible_impossible() {
        let sim = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
        let full = PresentedObject {
            visible_fraction: 1.0,
            ..PresentedObject::native(1, Rect::new(0, 0, 100, 200))
        };
        let half = PresentedObject {
            visible_fraction: 0.6,
            ..full
        };
        let sliver = PresentedObject {
            visible_fraction: 0.2,
            ..full
        };
        let p_full = sim.detection_probability(&full, 0.8);
        let p_half = sim.detection_probability(&half, 0.8);
        let p_sliver = sim.detection_probability(&sliver, 0.8);
        assert!(p_full > p_half, "{p_full} vs {p_half}");
        assert_eq!(p_sliver, 0.0);
    }

    #[test]
    fn scene_base_scales_probability() {
        let sim = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
        let obj = PresentedObject::native(1, Rect::new(0, 0, 100, 200));
        let hard = sim.detection_probability(&obj, 0.5);
        let easy = sim.detection_probability(&obj, 0.95);
        assert!((easy / hard - 0.95 / 0.5).abs() < 1e-9);
    }

    #[test]
    fn detect_returns_frame_space_boxes() {
        let sim = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
        let bounds = Rect::from_size(Size::UHD_4K);
        let objects: Vec<PresentedObject> = (0..50)
            .map(|i| PresentedObject::native(i, Rect::new(100 + i as u32 * 60, 400, 50, 100)))
            .collect();
        let mut rng = DetRng::new(3);
        let dets = sim.detect(&objects, 8.3, 0.9, bounds, &mut rng);
        assert!(!dets.is_empty());
        for d in &dets {
            assert!(bounds.contains_rect(&d.rect), "detection escapes frame");
            assert!(d.confidence > 0.0 && d.confidence < 1.0);
        }
    }

    #[test]
    fn scaled_constructor_shrinks_presented_area() {
        let obj = PresentedObject::scaled(1, Rect::new(0, 0, 100, 100), 0.25);
        assert!((obj.presented_area - 625.0).abs() < 1e-9);
        assert_eq!(obj.true_rect, Rect::new(0, 0, 100, 100));
    }

    #[test]
    fn deterministic_given_stream() {
        let sim = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
        let bounds = Rect::from_size(Size::UHD_4K);
        let objs = vec![PresentedObject::native(1, Rect::new(50, 50, 80, 160))];
        let a = sim.detect(&objs, 1.0, 0.9, bounds, &mut DetRng::new(5));
        let b = sim.detect(&objs, 1.0, 0.9, bounds, &mut DetRng::new(5));
        assert_eq!(a, b);
    }
}
