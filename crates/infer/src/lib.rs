//! Inference substrate: latency and accuracy models plus AP evaluation.
//!
//! The paper serves a Yolov8x detector from GPU serverless functions. No
//! GPU exists in this environment, so inference is modelled by two
//! calibrated components:
//!
//! * [`latency`] — batch execution time as an affine function of the
//!   pixels processed, with lognormal noise; profiles are calibrated to
//!   the paper's measurements (Fig. 2b, Fig. 8, Fig. 14a);
//! * [`estimator`] — the paper's offline **Latency Estimator**: profile
//!   every batch size for 1000 iterations and use `T_slack = µ + 3σ`
//!   (Eqn. 9) as the conservative execution-time bound;
//! * [`accuracy`] — a detection simulator whose per-object recall follows
//!   a calibrated curve in the object's *presented* pixel area,
//!   reproducing the resolution–accuracy trade-off of Fig. 4b, with
//!   confidence scores, box jitter and false positives;
//! * [`ap`] — a standard AP@0.5 evaluator (confidence-ordered greedy
//!   matching, interpolated precision envelope), the metric of Tables
//!   III/IV and Figs. 2a/4b.
//!
//! # Example
//!
//! ```
//! use tangram_infer::latency::InferenceLatencyModel;
//! use tangram_sim::rng::DetRng;
//!
//! let model = InferenceLatencyModel::rtx4090_yolov8x();
//! let mut rng = DetRng::new(1);
//! // One 1024×1024 canvas ≈ 1.05 Mpx.
//! let t = model.sample(1.05, &mut rng);
//! assert!(t.as_millis() > 30 && t.as_millis() < 250);
//! ```

pub mod accuracy;
pub mod ap;
pub mod estimator;
pub mod latency;

pub use accuracy::{DetectionSimulator, PresentedObject, ResolutionProfile};
pub use ap::Detection;
pub use ap::{average_precision, FrameEval};
pub use estimator::LatencyEstimator;
pub use latency::InferenceLatencyModel;
