//! Average-precision evaluation (AP@0.5).
//!
//! The standard single-class protocol used by the paper's Tables III/IV
//! and Figs. 2a/4b: detections across all frames are sorted by confidence,
//! greedily matched to unmatched ground truth within their frame at
//! IoU ≥ threshold, and AP is the area under the interpolated
//! precision–recall curve (precision envelope).

use serde::{Deserialize, Serialize};
use tangram_types::geometry::Rect;

/// One detection: a box and its confidence score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Detected box (frame coordinates).
    pub rect: Rect,
    /// Confidence in `(0, 1)`.
    pub confidence: f64,
}

/// Ground truth and detections for one frame.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FrameEval {
    /// Ground-truth boxes.
    pub truths: Vec<Rect>,
    /// Model detections.
    pub detections: Vec<Detection>,
}

impl FrameEval {
    /// Bundles one frame's ground truth and detections.
    #[must_use]
    pub fn new(truths: Vec<Rect>, detections: Vec<Detection>) -> Self {
        Self { truths, detections }
    }
}

/// Computes AP at the given IoU threshold over a set of frames.
///
/// Returns 0 when there is ground truth but no detections, and 0 when
/// there is no ground truth at all (nothing to recall).
#[must_use]
pub fn average_precision(frames: &[FrameEval], iou_threshold: f64) -> f64 {
    let total_truth: usize = frames.iter().map(|f| f.truths.len()).sum();
    if total_truth == 0 {
        return 0.0;
    }
    // Flatten detections with their frame index, sort by confidence desc.
    let mut dets: Vec<(usize, Detection)> = frames
        .iter()
        .enumerate()
        .flat_map(|(i, f)| f.detections.iter().map(move |&d| (i, d)))
        .collect();
    dets.sort_by(|a, b| {
        b.1.confidence
            .partial_cmp(&a.1.confidence)
            .expect("confidence is finite")
    });

    let mut matched: Vec<Vec<bool>> = frames.iter().map(|f| vec![false; f.truths.len()]).collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut curve: Vec<(f64, f64)> = Vec::with_capacity(dets.len()); // (recall, precision)
    for (frame_idx, det) in dets {
        let truths = &frames[frame_idx].truths;
        // Best unmatched ground-truth box by IoU.
        let mut best: Option<(usize, f64)> = None;
        for (t, truth) in truths.iter().enumerate() {
            if matched[frame_idx][t] {
                continue;
            }
            let iou = det.rect.iou(truth);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((t, iou));
            }
        }
        match best {
            Some((t, _)) => {
                matched[frame_idx][t] = true;
                tp += 1;
            }
            None => fp += 1,
        }
        curve.push((tp as f64 / total_truth as f64, tp as f64 / (tp + fp) as f64));
    }
    if curve.is_empty() {
        return 0.0;
    }
    // Precision envelope (make precision non-increasing in recall), then
    // integrate over recall.
    for i in (0..curve.len() - 1).rev() {
        curve[i].1 = curve[i].1.max(curve[i + 1].1);
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for &(recall, precision) in &curve {
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
    }
    ap
}

/// AP@0.5 — the paper's metric.
#[must_use]
pub fn ap50(frames: &[FrameEval]) -> f64 {
    average_precision(frames, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(rect: Rect, confidence: f64) -> Detection {
        Detection { rect, confidence }
    }

    #[test]
    fn perfect_detection_is_ap_one() {
        let truths = vec![Rect::new(0, 0, 50, 100), Rect::new(200, 200, 60, 120)];
        let detections = truths.iter().map(|&r| det(r, 0.9)).collect();
        let frames = [FrameEval::new(truths, detections)];
        assert!((ap50(&frames) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_detections_is_zero() {
        let frames = [FrameEval::new(vec![Rect::new(0, 0, 10, 10)], vec![])];
        assert_eq!(ap50(&frames), 0.0);
    }

    #[test]
    fn no_ground_truth_is_zero() {
        let frames = [FrameEval::new(
            vec![],
            vec![det(Rect::new(0, 0, 10, 10), 0.9)],
        )];
        assert_eq!(ap50(&frames), 0.0);
    }

    #[test]
    fn half_recall_no_fp() {
        let truths = vec![Rect::new(0, 0, 50, 100), Rect::new(500, 500, 50, 100)];
        let detections = vec![det(Rect::new(0, 0, 50, 100), 0.9)];
        let frames = [FrameEval::new(truths, detections)];
        assert!((ap50(&frames) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn low_confidence_fp_does_not_hurt_earlier_precision() {
        // TP at conf 0.9, FP at conf 0.1: the envelope keeps AP at recall
        // achieved before the FP.
        let truths = vec![Rect::new(0, 0, 50, 100)];
        let detections = vec![
            det(Rect::new(0, 0, 50, 100), 0.9),
            det(Rect::new(800, 800, 50, 100), 0.1),
        ];
        let frames = [FrameEval::new(truths, detections)];
        assert!((ap50(&frames) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_confidence_fp_hurts() {
        let truths = vec![Rect::new(0, 0, 50, 100)];
        let detections = vec![
            det(Rect::new(800, 800, 50, 100), 0.95), // FP ranked first
            det(Rect::new(0, 0, 50, 100), 0.5),
        ];
        let frames = [FrameEval::new(truths, detections)];
        let ap = ap50(&frames);
        assert!((ap - 0.5).abs() < 1e-12, "ap {ap}");
    }

    #[test]
    fn duplicate_detections_count_once() {
        let truths = vec![Rect::new(0, 0, 50, 100)];
        let detections = vec![
            det(Rect::new(0, 0, 50, 100), 0.9),
            det(Rect::new(1, 0, 50, 100), 0.8), // duplicate → FP
        ];
        let frames = [FrameEval::new(truths, detections)];
        let ap = ap50(&frames);
        assert!((ap - 1.0).abs() < 1e-12, "envelope keeps ap 1.0, got {ap}");
    }

    #[test]
    fn matching_respects_iou_threshold() {
        let truths = vec![Rect::new(0, 0, 100, 100)];
        // Offset box with IoU just below 0.5.
        let detections = vec![det(Rect::new(60, 0, 100, 100), 0.9)];
        let frames = [FrameEval::new(truths, detections)];
        assert_eq!(ap50(&frames), 0.0);
        // But it passes a looser threshold.
        assert!(average_precision(&frames, 0.2) > 0.9);
    }

    #[test]
    fn matches_within_frame_only() {
        // Detection in frame 0 cannot match truth in frame 1.
        let frames = [
            FrameEval::new(vec![], vec![det(Rect::new(0, 0, 50, 100), 0.9)]),
            FrameEval::new(vec![Rect::new(0, 0, 50, 100)], vec![]),
        ];
        assert_eq!(ap50(&frames), 0.0);
    }

    #[test]
    fn detection_prefers_best_iou_truth() {
        // Two truths; the detection overlaps both but one much better.
        let truths = vec![Rect::new(0, 0, 100, 100), Rect::new(40, 0, 100, 100)];
        let detections = vec![
            det(Rect::new(42, 0, 100, 100), 0.9), // near-perfect on truth 1
            det(Rect::new(0, 0, 100, 100), 0.8),  // perfect on truth 0
        ];
        let frames = [FrameEval::new(truths, detections)];
        assert!((ap50(&frames) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recall_accumulates_across_frames() {
        let make_frame = |hit: bool| {
            let truth = Rect::new(0, 0, 50, 100);
            let dets = if hit { vec![det(truth, 0.9)] } else { vec![] };
            FrameEval::new(vec![truth], dets)
        };
        let frames: Vec<FrameEval> = (0..10).map(|i| make_frame(i % 2 == 0)).collect();
        let ap = ap50(&frames);
        assert!(
            (ap - 0.5).abs() < 1e-12,
            "5/10 recalled at precision 1: {ap}"
        );
    }
}
