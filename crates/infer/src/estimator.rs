//! The Latency Estimator (Eqn. 9).
//!
//! "Canvases of size M×N featuring diverse patch compositions are grouped
//! into different batch sizes. Each group undergoes 1000 inference
//! iterations, with their corresponding average time µ and standard
//! deviation σ being recorded. […] we set the slack time as the mean plus
//! three times the standard deviation." — §III-C.
//!
//! Profiling happens offline, so the estimator is free at scheduling time:
//! [`LatencyEstimator::slack_for`] is a table lookup.

use crate::latency::InferenceLatencyModel;
use serde::{Deserialize, Serialize};
use tangram_sim::rng::DetRng;
use tangram_sim::stats::OnlineStats;
use tangram_types::geometry::Size;
use tangram_types::time::SimDuration;

/// Offline-profiled conservative execution-time bounds per batch size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyEstimator {
    canvas: Size,
    /// `(µ, σ)` in seconds, indexed by batch size − 1.
    profile: Vec<(f64, f64)>,
    /// The σ multiplier `k` (3 in the paper; exposed for the slack
    /// ablation and for "applications highly sensitive to the SLO", §V-B).
    sigma_multiplier: f64,
}

impl LatencyEstimator {
    /// Profiles `model` offline for batch sizes `1..=max_batch`, running
    /// `iterations` simulated inferences per size (the paper uses 1000).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `iterations` is zero.
    #[must_use]
    pub fn profile(
        model: &InferenceLatencyModel,
        canvas: Size,
        max_batch: usize,
        iterations: usize,
        sigma_multiplier: f64,
        seed: u64,
    ) -> Self {
        assert!(max_batch > 0, "need at least batch size 1");
        assert!(iterations > 0, "need at least one iteration");
        let mut rng = DetRng::new(seed).fork("latency-estimator");
        let mut profile = Vec::with_capacity(max_batch);
        for b in 1..=max_batch {
            let mpx = InferenceLatencyModel::batch_megapixels(b, canvas);
            let mut stats = OnlineStats::new();
            for _ in 0..iterations {
                stats.push(model.sample(mpx, &mut rng).as_secs_f64());
            }
            profile.push((stats.mean(), stats.std_dev()));
        }
        Self {
            canvas,
            profile,
            sigma_multiplier,
        }
    }

    /// Convenience: the paper's defaults (1000 iterations, k = 3).
    #[must_use]
    pub fn paper_default(model: &InferenceLatencyModel, canvas: Size, max_batch: usize) -> Self {
        Self::profile(model, canvas, max_batch, 1000, 3.0, 0x7a6e)
    }

    /// The canvas size the profile was built for.
    #[must_use]
    pub fn canvas(&self) -> Size {
        self.canvas
    }

    /// Largest profiled batch size.
    #[must_use]
    pub fn max_profiled_batch(&self) -> usize {
        self.profile.len()
    }

    /// The σ multiplier in use.
    #[must_use]
    pub fn sigma_multiplier(&self) -> f64 {
        self.sigma_multiplier
    }

    /// `T_slack(b) = µ_b + k·σ_b` for a batch of `b` canvases. Batch sizes
    /// beyond the profiled range extrapolate linearly from the last two
    /// entries (conservative: the affine latency model makes this exact in
    /// expectation).
    ///
    /// A batch of zero canvases needs no time.
    #[must_use]
    pub fn slack_for(&self, batch: usize) -> SimDuration {
        if batch == 0 {
            return SimDuration::ZERO;
        }
        let k = self.sigma_multiplier;
        if batch <= self.profile.len() {
            let (mu, sigma) = self.profile[batch - 1];
            return SimDuration::from_secs_f64(mu + k * sigma);
        }
        // Linear extrapolation on µ; σ taken from the largest profiled size.
        let n = self.profile.len();
        let (mu_last, sigma_last) = self.profile[n - 1];
        let slope = if n >= 2 {
            mu_last - self.profile[n - 2].0
        } else {
            mu_last
        };
        let mu = mu_last + slope * (batch - n) as f64;
        SimDuration::from_secs_f64(mu + k * sigma_last)
    }

    /// The profiled mean for a batch size (diagnostics / reports).
    #[must_use]
    pub fn mean_for(&self, batch: usize) -> SimDuration {
        if batch == 0 {
            return SimDuration::ZERO;
        }
        let idx = batch.min(self.profile.len()) - 1;
        SimDuration::from_secs_f64(self.profile[idx].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> LatencyEstimator {
        LatencyEstimator::paper_default(
            &InferenceLatencyModel::rtx4090_yolov8x(),
            Size::CANVAS_1024,
            8,
        )
    }

    #[test]
    fn slack_grows_with_batch() {
        let e = estimator();
        let mut prev = SimDuration::ZERO;
        for b in 1..=8 {
            let s = e.slack_for(b);
            assert!(s > prev, "slack must grow with batch size");
            prev = s;
        }
    }

    #[test]
    fn slack_exceeds_mean() {
        let e = estimator();
        for b in 1..=8 {
            assert!(
                e.slack_for(b) > e.mean_for(b),
                "µ+3σ must exceed µ at batch {b}"
            );
        }
    }

    #[test]
    fn slack_covers_most_samples() {
        // The point of µ+3σ: execution virtually never exceeds the slack.
        let model = InferenceLatencyModel::rtx4090_yolov8x();
        let e = estimator();
        let mut rng = DetRng::new(99);
        for b in [1usize, 4, 8] {
            let slack = e.slack_for(b).as_secs_f64();
            let mpx = InferenceLatencyModel::batch_megapixels(b, Size::CANVAS_1024);
            let n = 2000;
            let over = (0..n)
                .filter(|_| model.sample(mpx, &mut rng).as_secs_f64() > slack)
                .count();
            let rate = over as f64 / n as f64;
            assert!(rate < 0.01, "batch {b}: {rate:.3} of samples exceed slack");
        }
    }

    #[test]
    fn zero_batch_zero_slack() {
        assert_eq!(estimator().slack_for(0), SimDuration::ZERO);
    }

    #[test]
    fn extrapolates_beyond_profiled_range() {
        let e = estimator();
        let inside = e.slack_for(8);
        let beyond = e.slack_for(12);
        let further = e.slack_for(16);
        assert!(beyond > inside);
        assert!(further > beyond);
        // Roughly linear growth per extra canvas.
        let step1 = beyond.as_secs_f64() - inside.as_secs_f64();
        let step2 = further.as_secs_f64() - beyond.as_secs_f64();
        assert!((step1 / step2 - 1.0).abs() < 0.25);
    }

    #[test]
    fn higher_k_is_more_conservative() {
        let model = InferenceLatencyModel::rtx4090_yolov8x();
        let e1 = LatencyEstimator::profile(&model, Size::CANVAS_1024, 4, 500, 1.0, 1);
        let e3 = LatencyEstimator::profile(&model, Size::CANVAS_1024, 4, 500, 3.0, 1);
        for b in 1..=4 {
            assert!(e3.slack_for(b) > e1.slack_for(b));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let model = InferenceLatencyModel::rtx4090_yolov8x();
        let a = LatencyEstimator::profile(&model, Size::CANVAS_1024, 4, 200, 3.0, 7);
        let b = LatencyEstimator::profile(&model, Size::CANVAS_1024, 4, 200, 3.0, 7);
        assert_eq!(a.slack_for(3), b.slack_for(3));
    }
}
